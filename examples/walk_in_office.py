#!/usr/bin/env python
"""Walking into a smart office: dynamic discovery + persistent learning.

The pervasive-computing vision of the paper's introduction: a handheld
enters a well-conditioned environment, *discovers* the compute servers
it offers (the SLP-style directory extension of §3.2), and immediately
exploits them using demand models *learned in previous sessions* (the
usage-log persistence extension of §3.4) — no training phase, no static
configuration.

Run:  python examples/walk_in_office.py
"""

from repro.apps import (
    FULL_LM_BYTES,
    FULL_LM_PATH,
    JanusService,
    REDUCED_LM_BYTES,
    REDUCED_LM_PATH,
    SpeechApplication,
    SpeechWorkload,
)
from repro.coda import FileServer
from repro.core import SpectraNode
from repro.discovery import DirectoryService, start_advertising, start_discovery
from repro.hosts import IBM_T20, ITSY_V22, SERVER_B
from repro.network import SharedMedium, Network
from repro.rpc import RpcTransport
from repro.sim import Simulator
from repro.testbeds import ItsyTestbed


def learn_at_home() -> str:
    """Session 1 (yesterday, at home): train on the serial-link testbed
    and export what was learned."""
    bed = ItsyTestbed()
    bed.fileserver.create_file(FULL_LM_PATH, FULL_LM_BYTES)
    bed.fileserver.create_file(REDUCED_LM_PATH, REDUCED_LM_BYTES)
    for coda in (bed.itsy.coda, bed.t20.coda):
        coda.warm(FULL_LM_PATH)
        coda.warm(REDUCED_LM_PATH)
    bed.itsy.register_service(JanusService())
    bed.t20.register_service(JanusService())
    bed.poll()
    app = SpeechApplication(bed.client)
    bed.sim.run_process(app.register())
    alternatives = app.spec.alternatives(["t20"])
    for i, length in enumerate(SpeechWorkload().training(15)):
        bed.sim.run_process(
            app.recognize(length, force=alternatives[i % len(alternatives)])
        )
    print(f"  trained on 15 utterances; exporting "
          f"{len(bed.client.operation(app.spec.name).predictor.log)} "
          "usage samples")
    return bed.client.export_usage_log(app.spec.name)


def walk_into_office(learned: str) -> None:
    """Session 2 (today, at the office): a fresh world with a discovery
    directory and an unknown — to the client — compute server."""
    sim = Simulator()
    network = Network(sim)
    transport = RpcTransport(sim, network)
    fileserver = FileServer(sim, "fs")
    network.register_host("fs")
    fileserver.create_file(FULL_LM_PATH, FULL_LM_BYTES)
    fileserver.create_file(REDUCED_LM_PATH, REDUCED_LM_BYTES)

    itsy = SpectraNode(sim, network, transport, fileserver, "itsy",
                       ITSY_V22, battery_powered=True)
    office_server = SpectraNode(sim, network, transport, fileserver,
                                "office-server", SERVER_B, with_client=False)
    directory = SpectraNode(sim, network, transport, fileserver,
                            "directory", IBM_T20, with_client=False)

    wlan = SharedMedium(sim, 1_400_000.0, default_latency_s=0.003,
                        name="office-wlan")
    for a, b in (("itsy", "office-server"), ("itsy", "directory"),
                 ("itsy", "fs"), ("office-server", "directory"),
                 ("office-server", "fs"), ("directory", "fs")):
        network.connect(a, b, wlan.attach())

    itsy.coda.warm(FULL_LM_PATH)
    itsy.coda.warm(REDUCED_LM_PATH)
    office_server.coda.warm(FULL_LM_PATH)
    office_server.coda.warm(REDUCED_LM_PATH)

    itsy.register_service(JanusService())
    office_server.register_service(JanusService())
    directory.register_service(DirectoryService(sim))

    client = itsy.require_client()
    app = SpeechApplication(client)
    # Warm start: yesterday's models, today's world.
    sim.run_process(client.register_fidelity(
        app.spec, usage_log_json=learned,
    ))
    app._registered = True

    print(f"  client's server database on arrival: "
          f"{client.server_names() or '(empty)'}")

    start_advertising(office_server.server, "directory", interval_s=5.0)
    start_discovery(client, "directory", interval_s=5.0)
    sim.advance(12.0)
    print(f"  ...after 12 s of discovery: {client.known_servers()}")

    report = sim.run_process(app.recognize(2.0))
    how = "solver (warm-started)" if report.prediction else "exploration"
    print(f"  first utterance: {report.alternative.describe()}"
          f"  {report.elapsed_s:.2f}s  via {how}")


def main() -> None:
    print("Session 1 — at home, serial link to the laptop:")
    learned = learn_at_home()
    print("\nSession 2 — walking into the office (WLAN, unknown server):")
    walk_into_office(learned)
    print("\nNo static configuration and no retraining: the directory "
          "supplied the\nserver, the exported usage log supplied the "
          "models, and the first\nutterance was placed by the solver.")


if __name__ == "__main__":
    main()
