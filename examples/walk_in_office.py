#!/usr/bin/env python
"""Walking into a smart office: dynamic discovery + persistent learning.

The pervasive-computing vision of the paper's introduction: a handheld
enters a well-conditioned environment, *discovers* the compute servers
it offers (the SLP-style directory extension of §3.2), and immediately
exploits them using demand models *learned in previous sessions* (the
usage-log persistence extension of §3.4) — no training phase, no static
configuration.

The office world itself is the canned ``walk-in-office`` scenario spec
(``repro scenario list``); this driver only adds what the declarative
model cannot express — the directory service, the discovery loop, and
the warm-started fidelity registration.

Run:  python examples/walk_in_office.py
"""

from repro.apps import (
    FULL_LM_BYTES,
    FULL_LM_PATH,
    JanusService,
    REDUCED_LM_BYTES,
    REDUCED_LM_PATH,
    SpeechApplication,
    SpeechWorkload,
)
from repro.discovery import DirectoryService, start_advertising, start_discovery
from repro.scenarios import canned_spec, compile_scenario
from repro.testbeds import ItsyTestbed


def learn_at_home() -> str:
    """Session 1 (yesterday, at home): train on the serial-link testbed
    and export what was learned."""
    bed = ItsyTestbed()
    bed.fileserver.create_file(FULL_LM_PATH, FULL_LM_BYTES)
    bed.fileserver.create_file(REDUCED_LM_PATH, REDUCED_LM_BYTES)
    for coda in (bed.itsy.coda, bed.t20.coda):
        coda.warm(FULL_LM_PATH)
        coda.warm(REDUCED_LM_PATH)
    bed.itsy.register_service(JanusService())
    bed.t20.register_service(JanusService())
    bed.poll()
    app = SpeechApplication(bed.client)
    bed.sim.run_process(app.register())
    alternatives = app.spec.alternatives(["t20"])
    for i, length in enumerate(SpeechWorkload().training(15)):
        bed.sim.run_process(
            app.recognize(length, force=alternatives[i % len(alternatives)])
        )
    print(f"  trained on 15 utterances; exporting "
          f"{len(bed.client.operation(app.spec.name).predictor.log)} "
          "usage samples")
    return bed.client.export_usage_log(app.spec.name)


def walk_into_office(learned: str) -> None:
    """Session 2 (today, at the office): the canned ``walk-in-office``
    world, but with an *empty* server database — the client must
    discover the office server and warm-start from yesterday's log."""
    world = compile_scenario(canned_spec("walk-in-office"),
                             connect_clients=False, register_apps=False)
    sim = world.sim
    world.nodes["directory"].register_service(DirectoryService(sim))

    compiled = world.clients[0]
    client = compiled.client
    app = compiled.app
    # Warm start: yesterday's models, today's world.
    sim.run_process(client.register_fidelity(
        app.spec, usage_log_json=learned,
    ))
    app._registered = True

    print(f"  client's server database on arrival: "
          f"{client.server_names() or '(empty)'}")

    start_advertising(world.nodes["office-server"].server, "directory",
                      interval_s=5.0)
    start_discovery(client, "directory", interval_s=5.0)
    sim.advance(12.0)
    print(f"  ...after 12 s of discovery: {client.known_servers()}")

    report = sim.run_process(app.recognize(2.0))
    how = "solver (warm-started)" if report.prediction else "exploration"
    print(f"  first utterance: {report.alternative.describe()}"
          f"  {report.elapsed_s:.2f}s  via {how}")


def main() -> None:
    print("Session 1 — at home, serial link to the laptop:")
    learned = learn_at_home()
    print("\nSession 2 — walking into the office (WLAN, unknown server):")
    walk_into_office(learned)
    print("\nNo static configuration and no retraining: the directory "
          "supplied the\nserver, the exported usage log supplied the "
          "models, and the first\nutterance was placed by the solver.")


if __name__ == "__main__":
    main()
