"""Janus speech recognition (paper §3.7.1, evaluated in §4.1).

Janus performs speech-to-text translation of spoken utterances.  The
Spectra port has **one operation** — recognition of an utterance — with:

* three execution plans: ``local`` (everything on the client),
  ``remote`` (raw audio shipped to a server that runs the whole
  pipeline), and ``hybrid`` (the signal-processing front end runs
  locally, the compact feature vectors travel, and the search runs on
  the server);
* one fidelity dimension, the recognition vocabulary: ``full`` (the
  277 KB language model, desirability 1.0) or ``reduced`` (a smaller
  task-specific model, desirability 0.5); and
* one input parameter, the utterance length in seconds.

Resource shape (the part the paper's Figure 3 depends on): the
recognition search is floating-point heavy, so it is catastrophically
slow on the FPU-less Itsy — the paper's local plan takes 3–9× as long as
the hybrid/remote plans.  The front end is cheaper and less FP-bound, so
running it locally (hybrid) pays off because features are ~2.7× smaller
than raw audio over the Itsy's serial link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Mapping, Optional

from ..core import (
    ExecutionPlan,
    OperationSpec,
    SpectraClient,
    local_plan,
)
from ..odyssey import FidelitySpec
from ..rpc import OpContext, OpResult, Service

#: Coda paths of the language models.
FULL_LM_PATH = "/speech/lm.full"
REDUCED_LM_PATH = "/speech/lm.reduced"
FULL_LM_BYTES = 277 * 1024          # the paper's 277 KB language model
REDUCED_LM_BYTES = 60 * 1024


@dataclass(frozen=True)
class SpeechModel:
    """Cycle/byte cost model for the recognizer.

    Calibrated so the Itsy/T20 testbed reproduces Figure 3's shape; see
    EXPERIMENTS.md for the measured ratios.
    """

    #: front-end cycles per second of audio (signal processing)
    frontend_cycles_per_s: float = 30e6
    #: front-end floating-point fraction
    frontend_fp_fraction: float = 0.3
    #: recognition-search cycles per second of audio, full vocabulary
    recognize_cycles_per_s: float = 800e6
    #: reduced-vocabulary search cost, as a fraction of full
    reduced_factor: float = 0.55
    #: recognition floating-point fraction
    recognize_fp_fraction: float = 0.5
    #: raw audio bytes per second of speech (16 kHz, 16-bit)
    raw_bytes_per_s: int = 16_000
    #: feature-vector bytes per second of speech
    feature_bytes_per_s: int = 6_000
    #: recognized-text result size
    result_bytes: int = 200

    def recognize_cycles(self, length_s: float, vocab: str) -> float:
        cycles = self.recognize_cycles_per_s * length_s
        if vocab == "reduced":
            cycles *= self.reduced_factor
        elif vocab != "full":
            raise ValueError(f"unknown vocabulary {vocab!r}")
        return cycles

    def lm_path(self, vocab: str) -> str:
        return FULL_LM_PATH if vocab == "full" else REDUCED_LM_PATH


#: Fidelity desirabilities from the paper: reduced 0.5, full 1.0.
VOCAB_DESIRABILITY = {"full": 1.0, "reduced": 0.5}


def speech_fidelity_desirability(point: Mapping[str, Any]) -> float:
    return VOCAB_DESIRABILITY[point["vocab"]]


class JanusService(Service):
    """The server-side recognizer component.

    Optypes:

    * ``frontend`` — signal processing only (hybrid plan, local half)
    * ``recognize`` — search only, from features (hybrid plan, remote half)
    * ``full`` — front end + search (local and remote plans)
    """

    name = "janus"

    def __init__(self, model: Optional[SpeechModel] = None):
        self.model = model if model is not None else SpeechModel()

    def perform(self, ctx: OpContext) -> Generator:
        length_s = float(ctx.params["utterance_length"])
        if ctx.optype == "frontend":
            yield from ctx.compute(
                self.model.frontend_cycles_per_s * length_s,
                fp_fraction=self.model.frontend_fp_fraction,
            )
            return OpResult(
                outdata_bytes=int(self.model.feature_bytes_per_s * length_s)
            )
        if ctx.optype in ("recognize", "full"):
            vocab = ctx.params["vocab"]
            if ctx.optype == "full":
                yield from ctx.compute(
                    self.model.frontend_cycles_per_s * length_s,
                    fp_fraction=self.model.frontend_fp_fraction,
                )
            yield from ctx.access(self.model.lm_path(vocab))
            yield from ctx.compute(
                self.model.recognize_cycles(length_s, vocab),
                fp_fraction=self.model.recognize_fp_fraction,
            )
            return OpResult(outdata_bytes=self.model.result_bytes,
                            result=f"<recognized {length_s:.1f}s utterance>")
        raise ValueError(f"janus: unknown optype {ctx.optype!r}")


#: The hybrid plan: front end local, recognition (and the LM read) remote.
def hybrid_plan() -> ExecutionPlan:
    return ExecutionPlan(
        name="hybrid", uses_remote=True, file_access_role="remote",
        description="front end on the client, recognition on a server",
    )


def speech_remote_plan() -> ExecutionPlan:
    return ExecutionPlan(
        name="remote", uses_remote=True, file_access_role="remote",
        description="raw audio shipped; whole pipeline on a server",
    )


def make_speech_spec() -> OperationSpec:
    """The Janus operation registration (Figure 1's register_fidelity)."""
    return OperationSpec(
        name="speech-recognize",
        plans=(local_plan("whole pipeline on the client"),
               speech_remote_plan(),
               hybrid_plan()),
        fidelity=FidelitySpec.single("vocab", ("full", "reduced")),
        input_params=("utterance_length",),
        fidelity_desirability=speech_fidelity_desirability,
        # latency desirability: the paper's default 1/T
    )


class SpeechApplication:
    """Client-side Janus driver: executes recognitions through Spectra."""

    def __init__(self, client: SpectraClient,
                 model: Optional[SpeechModel] = None):
        self.client = client
        self.model = model if model is not None else SpeechModel()
        self.spec = make_speech_spec()
        self._registered = False

    def register(self) -> Generator:
        """Process: register the operation with Spectra."""
        result = yield from self.client.register_fidelity(self.spec)
        self._registered = True
        return result

    def recognize(self, utterance_length_s: float,
                  force=None) -> Generator:
        """Process: recognize one utterance; returns the OperationReport.

        ``force`` pins a specific :class:`~repro.core.Alternative`
        (training / measure-all-alternatives sweeps).
        """
        if not self._registered:
            raise RuntimeError("call register() before recognize()")
        params = {"utterance_length": float(utterance_length_s)}
        handle = yield from self.client.begin_fidelity_op(
            self.spec.name, params=params, force=force,
        )
        vocab = handle.fidelity["vocab"]
        rpc_params = dict(params, vocab=vocab)
        if handle.plan_name == "local":
            yield from self.client.do_local_op(
                handle, "janus", "full", indata_bytes=0, params=rpc_params,
            )
        elif handle.plan_name == "remote":
            raw = int(self.model.raw_bytes_per_s * utterance_length_s)
            yield from self.client.do_remote_op(
                handle, "janus", "full", indata_bytes=raw, params=rpc_params,
            )
        elif handle.plan_name == "hybrid":
            response = yield from self.client.do_local_op(
                handle, "janus", "frontend", indata_bytes=0, params=rpc_params,
            )
            yield from self.client.do_remote_op(
                handle, "janus", "recognize",
                indata_bytes=response.outdata_bytes, params=rpc_params,
            )
        else:  # pragma: no cover - spec defines exactly three plans
            raise AssertionError(f"unknown plan {handle.plan_name!r}")
        report = yield from self.client.end_fidelity_op(handle)
        return report
