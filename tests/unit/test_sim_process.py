"""Unit tests for processes (repro.sim.process)."""

import pytest

from repro.sim import Event, Interrupt, SimulationError, Timeout


class TestLifecycle:
    def test_alive_until_return(self, sim):
        def worker():
            yield Timeout(1.0)
            return "v"

        proc = sim.spawn(worker())
        assert proc.alive
        sim.run()
        assert not proc.alive and proc.ok and proc.value == "v"

    def test_non_generator_rejected(self, sim):
        with pytest.raises(TypeError):
            sim.spawn(lambda: None)  # type: ignore[arg-type]

    def test_failure_captured_as_event(self, sim):
        def worker():
            yield Timeout(1.0)
            raise KeyError("k")

        proc = sim.spawn(worker())
        sim.run()
        assert proc.triggered and not proc.ok
        assert isinstance(proc.value, KeyError)

    def test_yielding_garbage_fails_process(self, sim):
        def worker():
            yield "not an event"

        proc = sim.spawn(worker())
        sim.run()
        assert not proc.ok
        assert isinstance(proc.value, SimulationError)

    def test_waiting_on_failed_event_raises_inside(self, sim):
        failing = Event()

        def worker():
            try:
                yield failing
            except RuntimeError as exc:
                return f"caught {exc}"

        proc = sim.spawn(worker())
        sim.call_in(1.0, lambda: failing.fail(RuntimeError("nope")))
        sim.run()
        assert proc.value == "caught nope"


class TestInterrupt:
    def test_interrupt_delivers_cause(self, sim):
        def worker():
            try:
                yield Timeout(100.0)
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, sim.now)

        proc = sim.spawn(worker())
        sim.call_in(1.0, lambda: proc.interrupt("reason"))
        sim.run()
        # Interrupted at t=1, long before the 100 s timeout; the stale
        # timer still drains, so sim.now ends at 100 — the process's own
        # recorded time is what proves early wake-up.
        assert proc.value == ("interrupted", "reason", 1.0)

    def test_unhandled_interrupt_fails_process(self, sim):
        def worker():
            yield Timeout(100.0)

        proc = sim.spawn(worker())
        sim.call_in(1.0, lambda: proc.interrupt())
        sim.run()
        assert not proc.ok and isinstance(proc.value, Interrupt)

    def test_interrupt_after_completion_is_noop(self, sim):
        def worker():
            yield Timeout(1.0)
            return "done"

        proc = sim.spawn(worker())
        sim.run()
        proc.interrupt()  # must not raise or change outcome
        assert proc.value == "done"

    def test_interrupted_process_can_continue(self, sim):
        def worker():
            try:
                yield Timeout(100.0)
            except Interrupt:
                pass
            yield Timeout(1.0)
            return sim.now

        proc = sim.spawn(worker())
        sim.call_in(2.0, lambda: proc.interrupt())
        sim.run()
        assert proc.value == pytest.approx(3.0)


class TestComposition:
    def test_parent_sees_child_failure(self, sim):
        def child():
            yield Timeout(1.0)
            raise ValueError("child broke")

        def parent():
            try:
                yield sim.spawn(child())
            except ValueError as exc:
                return f"handled: {exc}"

        assert sim.run_process(parent()) == "handled: child broke"

    def test_deep_nesting(self, sim):
        def leaf(n):
            yield Timeout(0.1)
            return n

        def mid(n):
            value = yield sim.spawn(leaf(n))
            return value + 1

        def top():
            total = 0
            for i in range(5):
                total += yield sim.spawn(mid(i))
            return total

        assert sim.run_process(top()) == sum(range(5)) + 5
