"""Integration tests: the §4.3 Pangloss-Lite claims (Figures 8–9)."""

import pytest

from repro.apps import make_pangloss_spec
from repro.experiments.pangloss import run_pangloss_cell

spec = make_pangloss_spec()


@pytest.fixture(scope="module")
def baseline_small():
    return run_pangloss_cell("baseline", 4)


@pytest.fixture(scope="module")
def baseline_large():
    return run_pangloss_cell("baseline", 27)


@pytest.fixture(scope="module")
def filecache_small():
    return run_pangloss_cell("filecache", 7)


@pytest.fixture(scope="module")
def cpu_large():
    return run_pangloss_cell("cpu", 18)


class TestInputParameterModeling:
    def test_small_sentence_uses_all_engines(self, baseline_small):
        """'For the three smallest sentences, Spectra uses all
        engines.'"""
        fidelity = baseline_small.spectra.choice.fidelity_dict()
        assert fidelity == {"ebmt": "on", "glossary": "on",
                            "dictionary": "on"}

    def test_large_sentence_drops_glossary(self, baseline_large):
        """'For the two larger sentences, it does not use the glossary
        engine ... Spectra correctly predicts that execution time will
        increase with sentence size and switches to a lower fidelity.'"""
        fidelity = baseline_large.spectra.choice.fidelity_dict()
        assert fidelity["glossary"] == "off"
        assert fidelity["ebmt"] == "on"


class TestScenarioAdaptation:
    def test_filecache_avoids_server_b(self, filecache_small):
        """With the 12 MB EBMT corpus evicted from B, the EBMT engine
        should not run on B."""
        choice = filecache_small.spectra.choice
        if choice.plan.uses_remote:
            assert choice.server != "server-b"

    def test_cpu_scenario_avoids_loaded_server_a(self, cpu_large):
        choice = cpu_large.spectra.choice
        if choice.plan.uses_remote:
            assert choice.server != "server-a"


class TestDecisionQuality:
    def test_high_percentile(self, baseline_small, baseline_large,
                             filecache_small, cpu_large):
        """Figure 8: Spectra's choice lands in a high percentile of the
        ~90 alternatives."""
        for result in (baseline_small, baseline_large, filecache_small,
                       cpu_large):
            assert result.percentile(spec) >= 80

    def test_relative_utility_near_oracle(self, baseline_small,
                                          baseline_large):
        """'the utility of Spectra's choices are all within 2% of the
        best option' in the baseline scenario (we allow 10%)."""
        assert baseline_small.relative_utility(spec) >= 0.90
        assert baseline_large.relative_utility(spec) >= 0.90

    def test_space_is_paper_scale(self, baseline_small):
        """'there are 100 different combinations of location and
        fidelity' — ours is the same order."""
        assert 80 <= len(baseline_small.measurements) <= 110
