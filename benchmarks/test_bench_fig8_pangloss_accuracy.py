"""Figure 8: Pangloss-Lite decision accuracy (percentile of best).

Each bar of the paper's Figure 8 ranks Spectra's chosen alternative
among all ~100 (location × fidelity) combinations by achieved utility;
99 means it picked the best.  Three scenarios × five probe sentences.
"""

import pytest

from repro.apps import make_pangloss_spec
from repro.experiments import render_rank_figure, run_pangloss_experiment

from conftest import cached, save_figure

spec = make_pangloss_spec()


def _pangloss_results():
    return cached("pangloss", run_pangloss_experiment)


@pytest.mark.benchmark(group="figures")
def test_fig8_pangloss_percentiles(benchmark, results_dir):
    results = benchmark.pedantic(_pangloss_results, rounds=1, iterations=1)

    save_figure(results_dir, "fig8_pangloss_accuracy", render_rank_figure(
        "Figure 8: Accuracy for Pangloss-Lite (percentile of best)",
        spec, results,
    ))

    percentiles = {key: result.percentile(spec)
                   for key, result in results.items()}

    # Every cell lands in a high percentile of the ~90 alternatives.
    assert all(p >= 70 for p in percentiles.values()), percentiles
    # And most decisions are (near-)best.
    top = sum(1 for p in percentiles.values() if p >= 95)
    assert top >= len(percentiles) * 0.6

    # The §4.3 fidelity-adaptation claim: smallest baseline sentences use
    # all engines, the largest drop the glossary.
    smallest = results[("baseline", 4)].spectra.choice.fidelity_dict()
    largest = results[("baseline", 27)].spectra.choice.fidelity_dict()
    assert smallest == {"ebmt": "on", "glossary": "on", "dictionary": "on"}
    assert largest["glossary"] == "off"

    # The space really is paper-scale (~100 combinations).
    assert 80 <= len(results[("baseline", 4)].measurements) <= 110
