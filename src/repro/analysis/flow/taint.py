"""SPC101 — interprocedural determinism taint.

SPC001/SPC002 flag a wall-clock or global-RNG call *where it happens*.
This pass closes the loophole they leave open: a helper three modules
away reads the host clock, and a decision-path entry point reaches it
through an innocent-looking call chain.  The taint analysis marks every
function whose body contains a nondeterminism **source** — a wall-clock
read, a global-state RNG draw, an environment read — and propagates the
mark backward over the resolved project call graph.  Any **entry
point** (public function of a decision-path package: the simulator, the
solver, the client) that ends up tainted is a finding, reported with
the shortest call chain from the entry point to the source.

Declared **taint boundaries** stop propagation: ``repro.perf.timing``
exists to measure host CPU, so calls into it are sanctioned and do not
taint their callers.  Additional boundaries can be declared per-run via
the ``boundary_modules`` option (and entry packages via
``entry_packages``) — the mechanism is policy-free.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from ..core import ProjectRule, RuleConfig, Violation, register_rule
from ..rules.randomness import ALLOWED as _RNG_ALLOWED
from ..rules.randomness import BANNED_PREFIXES as _RNG_PREFIXES
from ..rules.wallclock import BANNED_CALLS as _WALL_CLOCK
from .project import FunctionInfo, ProjectIndex

#: Dotted call paths that read the process environment or host identity —
#: nondeterministic across machines and runs even with the clock tamed.
ENV_CALLS = frozenset({
    "os.getenv", "os.getenvb", "os.urandom", "os.cpu_count",
    "os.getloadavg", "os.getpid",
    "platform.node", "platform.platform", "platform.machine",
    "platform.processor", "platform.system",
    "socket.gethostname", "socket.getfqdn", "socket.gethostbyname",
    "getpass.getuser",
    "uuid.uuid1", "uuid.uuid4",
})

#: Dotted attribute-read prefixes with the same property.
ENV_ATTRS = ("os.environ", "sys.argv")

#: Module prefixes whose calls are secret-grade entropy: always tainted.
ENTROPY_PREFIXES = ("secrets.",)

#: Default decision-path packages: anything publicly callable here must
#: be replay-deterministic.
DEFAULT_ENTRY_PACKAGES = ("repro.sim", "repro.solver", "repro.core")

#: Default sanctioned host-time readers (see module docstring).
DEFAULT_BOUNDARY_MODULES = ("repro.perf.timing",)


def _describe_source(fn: FunctionInfo) -> Optional[Tuple[str, int]]:
    """(description, lineno) of the first nondeterminism source in *fn*,
    or None if the function body is clean."""
    hits: List[Tuple[int, str]] = []
    for site in fn.calls:
        path = site.path
        if path is None:
            continue
        line = getattr(site.node, "lineno", 1)
        if path in _WALL_CLOCK:
            hits.append((line, f"wall-clock call {path}()"))
        elif path in ENV_CALLS:
            hits.append((line, f"environment read {path}()"))
        elif any(path.startswith(p) for p in ENTROPY_PREFIXES):
            hits.append((line, f"entropy call {path}()"))
        elif path not in _RNG_ALLOWED and any(
                path.startswith(p) for p in _RNG_PREFIXES):
            hits.append((line, f"global-state RNG call {path}()"))
    for dotted, node in fn.attr_reads:
        if any(dotted == p or dotted.startswith(p + ".")
               for p in ENV_ATTRS):
            hits.append((getattr(node, "lineno", 1),
                         f"environment read {dotted}"))
    if not hits:
        return None
    line, description = min(hits)
    return description, line


@register_rule
class DeterminismTaintRule(ProjectRule):
    code = "SPC101"
    name = "determinism-taint"
    description = ("decision-path entry points must not transitively "
                   "reach wall-clock/RNG/environment sources")
    default_scope = ("src/repro",)
    default_exclude = ("src/repro/analysis",)

    def check_project(self, project, config: RuleConfig,
                      ) -> Iterator[Violation]:
        index: ProjectIndex = project.index
        entry_packages = tuple(config.options.get(
            "entry_packages", DEFAULT_ENTRY_PACKAGES))
        boundaries = tuple(config.options.get(
            "boundary_modules", DEFAULT_BOUNDARY_MODULES))

        def in_boundary(fn: FunctionInfo) -> bool:
            return any(fn.module == b or fn.module.startswith(b + ".")
                       for b in boundaries)

        # 1. Direct taint: functions whose own body contains a source.
        #    Boundary modules are sanctioned — never tainted, and taint
        #    never flows through them.
        taint: Dict[str, Tuple[Optional[str], str, int]] = {}
        frontier: List[str] = []
        for qname, fn in index.functions.items():
            if in_boundary(fn):
                continue
            described = _describe_source(fn)
            if described is not None:
                description, line = described
                taint[qname] = (None, description, line)
                frontier.append(qname)

        # 2. Fixpoint over the reverse call graph (BFS => the recorded
        #    chain through each function is a shortest one).
        callers = index.callers()
        frontier.sort()                 # determinism of chain choice
        queue = list(frontier)
        while queue:
            callee = queue.pop(0)
            for caller in callers.get(callee, ()):
                if caller in taint:
                    continue
                fn = index.functions.get(caller)
                if fn is None or in_boundary(fn):
                    continue
                _, description, line = taint[callee]
                taint[caller] = (callee, description, line)
                queue.append(caller)

        # 3. Report every tainted public entry point in scope.
        for qname in sorted(taint):
            fn = index.functions[qname]
            if not fn.is_public:
                continue
            if not any(fn.module == p or fn.module.startswith(p + ".")
                       for p in entry_packages):
                continue
            if not self.in_scope(fn.source, config):
                continue
            chain = self._chain(taint, qname)
            _, description, line = taint[self._chain_tail(taint, qname)]
            via = " -> ".join(chain)
            where = ""
            tail_fn = index.functions.get(chain[-1])
            if tail_fn is not None:
                where = f" ({tail_fn.source.posix_path}:{line})"
            yield self.violation(
                fn.source, fn.node,
                f"entry point {qname} reaches nondeterminism: "
                f"{via} -> {description}{where}",
            )

    @staticmethod
    def _chain(taint: Dict[str, Tuple[Optional[str], str, int]],
               qname: str) -> List[str]:
        chain = [qname]
        seen = {qname}
        while True:
            nxt = taint[chain[-1]][0]
            if nxt is None or nxt in seen:
                return chain
            chain.append(nxt)
            seen.add(nxt)

    @classmethod
    def _chain_tail(cls, taint, qname: str) -> str:
        return cls._chain(taint, qname)[-1]
