"""Setup shim for environments without the `wheel` package.

The canonical metadata lives in pyproject.toml; this file only enables
`pip install -e . --no-build-isolation --no-use-pep517` offline.
"""
from setuptools import setup

setup()
