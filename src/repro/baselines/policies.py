"""Baseline placement policies Spectra is compared against.

The paper's related-work section names the natural competitors:

* **always-local / always-remote** — the static choices a developer
  would hard-code without a runtime system;
* **RPF** (Rudenko et al.) — history-based, but it "use[s] remote
  execution only when both energy usage and performance are not
  adversely affected", monitors only elapsed time and battery, and has
  no notion of fidelity;
* **random** — the null policy, for calibration;
* **oracle** — the zero-overhead best choice in hindsight (computed by
  the experiment harness from exhaustive measurement).

Each policy implements ``choose(alternatives) -> Alternative`` plus an
``observe(alternative, time_s, energy_j)`` feedback hook, and is driven
through the same applications via the ``force=`` parameter — so every
policy pays identical execution costs and differs only in its choices.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import Alternative


class PlacementPolicy:
    """Interface for non-Spectra placement strategies."""

    name = "policy"

    def choose(self, alternatives: Sequence[Alternative]) -> Alternative:
        raise NotImplementedError

    def observe(self, alternative: Alternative, time_s: float,
                energy_j: float) -> None:
        """Feedback after execution (history-based policies use this)."""


def _max_fidelity(alternatives: Sequence[Alternative],
                  candidates: Sequence[Alternative]) -> Alternative:
    """Highest-fidelity candidate, by position in the declared fidelity
    order (the first fidelity point enumerated is the richest for all
    paper applications)."""
    order = {alt.fidelity: i for i, alt in enumerate(alternatives)}
    return min(candidates, key=lambda a: order.get(a.fidelity, 0))


class AlwaysLocalPolicy(PlacementPolicy):
    """Run everything on the client at full fidelity."""

    name = "always-local"

    def choose(self, alternatives: Sequence[Alternative]) -> Alternative:
        local = [a for a in alternatives if not a.plan.uses_remote]
        if not local:
            raise ValueError("no local alternative exists")
        return _max_fidelity(alternatives, local)


class AlwaysRemotePolicy(PlacementPolicy):
    """Run everything on a fixed server at full fidelity.

    Falls back to local when no remote alternative exists (server down);
    a static policy has no better option.
    """

    name = "always-remote"

    def __init__(self, server: Optional[str] = None):
        self.server = server

    def choose(self, alternatives: Sequence[Alternative]) -> Alternative:
        remote = [a for a in alternatives if a.plan.name == "remote"]
        if self.server is not None:
            remote = [a for a in remote if a.server == self.server]
        if not remote:
            remote = [a for a in alternatives if a.plan.uses_remote]
        if not remote:
            return AlwaysLocalPolicy().choose(alternatives)
        return _max_fidelity(alternatives, remote)


class RandomPolicy(PlacementPolicy):
    """Uniform random choice (seeded)."""

    name = "random"

    def __init__(self, seed: int = 7):
        self._rng = random.Random(seed)

    def choose(self, alternatives: Sequence[Alternative]) -> Alternative:
        return self._rng.choice(list(alternatives))


class RPFPolicy(PlacementPolicy):
    """Rudenko et al.'s Remote Processing Framework, modernized minimally.

    Keeps a running mean of measured (time, energy) for the local plan
    and for each remote placement, always at maximum fidelity (RPF
    predates fidelity adaptation).  Chooses a remote placement only when
    its history shows it better on *both* time and energy; otherwise
    stays local.  No per-resource monitoring: it cannot anticipate cache
    state, bandwidth changes, or input-size effects — the limitations
    the paper calls out.
    """

    name = "rpf"

    def __init__(self, min_samples: int = 1):
        self.min_samples = min_samples
        self._history: Dict[Tuple[str, Optional[str]], List[Tuple[float, float]]] = (
            defaultdict(list)
        )

    def observe(self, alternative: Alternative, time_s: float,
                energy_j: float) -> None:
        key = (alternative.plan.name, alternative.server)
        self._history[key].append((time_s, energy_j))

    def _mean(self, key) -> Optional[Tuple[float, float]]:
        samples = self._history.get(key, [])
        if len(samples) < self.min_samples:
            return None
        times, energies = zip(*samples)
        return sum(times) / len(times), sum(energies) / len(energies)

    def choose(self, alternatives: Sequence[Alternative]) -> Alternative:
        local_candidates = [a for a in alternatives if not a.plan.uses_remote]
        if not local_candidates:
            return _max_fidelity(alternatives, list(alternatives))
        local = _max_fidelity(alternatives, local_candidates)
        local_stats = self._mean((local.plan.name, None))

        best = local
        if local_stats is not None:
            best_time, best_energy = local_stats
            remote_keys = sorted(
                {(a.plan.name, a.server) for a in alternatives
                 if a.plan.uses_remote},
                key=str,
            )
            for key in remote_keys:
                stats = self._mean(key)
                if stats is None:
                    continue
                time_s, energy_j = stats
                # RPF's conservatism: remote must win on BOTH axes.
                if time_s <= best_time and energy_j <= best_energy:
                    candidates = [a for a in alternatives
                                  if (a.plan.name, a.server) == key]
                    best = _max_fidelity(alternatives, candidates)
                    best_time, best_energy = time_s, energy_j
        return best
