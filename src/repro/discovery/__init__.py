"""Dynamic server discovery (the paper's designed-but-unshipped feature).

"Currently, potential servers are statically specified in a
configuration file.  We have designed Spectra so that it could also use
a service discovery protocol [INS, SLP] to dynamically locate
additional servers, but this feature is not yet supported" (§3.2).

This package supplies that feature: an SLP-style *directory agent*
plus client/server glue.  Spectra servers advertise themselves to the
directory with a time-to-live; clients periodically query it and update
their server database — new servers become placement candidates, and
servers whose advertisements lapse drop out.
"""

from .directory import (
    ADVERTISE_TTL_S,
    DirectoryEntry,
    DirectoryService,
    start_advertising,
    start_discovery,
)

__all__ = [
    "ADVERTISE_TTL_S",
    "DirectoryEntry",
    "DirectoryService",
    "start_advertising",
    "start_discovery",
]
