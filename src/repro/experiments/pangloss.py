"""The Pangloss-Lite experiment — Figures 8 and 9 (§4.3).

Three scenarios on the ThinkPad testbed, probed with five sentences of
increasing length:

``baseline``   unloaded, wall power, knowledge bases cached everywhere.
``filecache``  the 12 MB EBMT corpus evicted from server B's cache.
``cpu``        the file-cache scenario plus two CPU-intensive processes
               on server A.

Pangloss has ~90 alternatives per decision, so unlike the speech/Latex
experiments each (scenario, sentence) cell uses **one** trained testbed:
Spectra's own choice is probed first, then every alternative is measured
forced, with the scenario's cache state *restored* after each
measurement (running an alternative that reads the evicted corpus would
otherwise warm B's cache and corrupt the remaining measurements).

Reported per cell, as in the paper: the percentile of Spectra's choice
among all alternatives ranked by achieved utility (Fig. 8; 99 = best),
and the ratio of Spectra's achieved utility to a zero-overhead oracle's
(Fig. 9).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..apps import (
    ENGINE_FILES,
    PanglossApplication,
    PanglossService,
    SentenceWorkload,
    install_pangloss_files,
    warm_pangloss_files,
)
from ..testbeds import ThinkpadTestbed
from .runner import AltMeasurement, ScenarioResult, SpectraMeasurement

SCENARIOS = ("baseline", "filecache", "cpu")

EBMT_CORPUS = ENGINE_FILES["ebmt"][0]


def _build(scenario: str, solver=None
           ) -> Tuple[ThinkpadTestbed, PanglossApplication]:
    """Fresh trained testbed with the scenario applied."""
    bed = ThinkpadTestbed(solver=solver)
    install_pangloss_files(bed.fileserver)
    for node in (bed.thinkpad, bed.server_a, bed.server_b):
        warm_pangloss_files(node.coda)
        node.register_service(PanglossService())

    bed.poll()
    app = PanglossApplication(bed.client)
    bed.sim.run_process(app.register())

    # Training: the paper's 129 sentences, forced round-robin over the
    # whole alternative space so every (plan × fidelity) bin trains.
    alternatives = app.spec.alternatives(["server-a", "server-b"])
    for i, words in enumerate(SentenceWorkload().training(129)):
        forced = alternatives[i % len(alternatives)]
        bed.sim.run_process(app.translate(words, force=forced))

    bed.sim.advance(30.0)
    bed.poll()
    _apply_scenario(bed, scenario)
    return bed, app


def _apply_scenario(bed: ThinkpadTestbed, scenario: str) -> None:
    if scenario == "baseline":
        return
    if scenario in ("filecache", "cpu"):
        if bed.server_b.coda.is_cached(EBMT_CORPUS):
            bed.server_b.coda.flush(EBMT_CORPUS)
        if scenario == "cpu":
            bed.load_server_cpu("server-a", nprocesses=2)
            bed.sim.advance(10.0)
        bed.poll()
        return
    raise ValueError(f"unknown pangloss scenario {scenario!r}")


def _restore_scenario(bed: ThinkpadTestbed, scenario: str) -> None:
    """Re-establish the scenario invariants a measurement may have broken."""
    if scenario in ("filecache", "cpu"):
        if bed.server_b.coda.is_cached(EBMT_CORPUS):
            bed.server_b.coda.flush(EBMT_CORPUS)
        bed.poll()


def run_pangloss_cell(scenario: str, words: int,
                      solver=None) -> ScenarioResult:
    """One (scenario, sentence) cell: Spectra's pick + the full sweep."""
    bed, app = _build(scenario, solver=solver)

    # Spectra's own decision first, at exactly the trained state.
    e0 = bed.thinkpad.host.energy_consumed_joules()
    report = bed.sim.run_process(app.translate(words))
    spectra = SpectraMeasurement(
        choice=report.alternative,
        time_s=report.elapsed_s,
        energy_j=bed.thinkpad.host.energy_consumed_joules() - e0,
        prediction=report.prediction,
    )
    _restore_scenario(bed, scenario)

    measurements: List[AltMeasurement] = []
    for alternative in app.spec.alternatives(["server-a", "server-b"]):
        e0 = bed.thinkpad.host.energy_consumed_joules()
        try:
            forced_report = bed.sim.run_process(
                app.translate(words, force=alternative)
            )
        except Exception:
            measurements.append(AltMeasurement(
                alternative=alternative, time_s=float("inf"),
                energy_j=float("inf"), feasible=False,
            ))
            _restore_scenario(bed, scenario)
            continue
        measurements.append(AltMeasurement(
            alternative=alternative,
            time_s=forced_report.elapsed_s,
            energy_j=bed.thinkpad.host.energy_consumed_joules() - e0,
        ))
        _restore_scenario(bed, scenario)

    return ScenarioResult(
        scenario=scenario,
        measurements=measurements,
        spectra=spectra,
        energy_importance=0.0,
        meta={"words": words},
    )


def run_pangloss_experiment(scenarios=SCENARIOS,
                            sentences: Optional[List[int]] = None,
                            solver=None
                            ) -> Dict[Tuple[str, int], ScenarioResult]:
    """The full Figure 8/9 sweep: scenario × probe sentence."""
    if sentences is None:
        sentences = SentenceWorkload().probes()
    return {
        (scenario, words): run_pangloss_cell(scenario, words, solver=solver)
        for scenario in scenarios
        for words in sentences
    }
