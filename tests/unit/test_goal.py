"""Unit tests for goal-directed energy adaptation (repro.energy.goal)."""

import pytest

from repro.energy import Battery, GoalDirectedAdaptation, PowerMeter


def make_system(sim, capacity=1000.0):
    meter = PowerMeter(sim)
    battery = Battery(sim, capacity_joules=capacity, meter=meter)
    adaptation = GoalDirectedAdaptation(sim, battery, meter)
    return meter, battery, adaptation


class TestImportanceParameter:
    def test_starts_at_zero(self, sim):
        _meter, _battery, adaptation = make_system(sim)
        assert adaptation.importance == 0.0

    def test_pinning(self, sim):
        _meter, _battery, adaptation = make_system(sim)
        adaptation.set_importance(0.4)
        assert adaptation.importance == 0.4
        with pytest.raises(ValueError):
            adaptation.set_importance(1.5)

    def test_wall_powered_stays_zero(self, sim):
        meter = PowerMeter(sim)
        adaptation = GoalDirectedAdaptation(sim, None, meter)
        adaptation.start(goal_seconds=3600.0)
        meter.set_component("cpu", 100.0)
        sim.run(until=100.0)
        assert adaptation.importance == 0.0


class TestFeedbackLoop:
    def test_heavy_drain_raises_importance(self, sim):
        meter, _battery, adaptation = make_system(sim, capacity=1000.0)
        # Drain so fast the battery lasts 100 s against a 1000 s goal.
        meter.set_component("cpu", 10.0)
        adaptation.start(goal_seconds=1000.0)
        sim.run(until=30.0)
        assert adaptation.importance > 0.5

    def test_light_drain_keeps_importance_low(self, sim):
        meter, _battery, adaptation = make_system(sim, capacity=1000.0)
        # 0.1 W against 1000 J: lifetime 10,000 s vs a 1,000 s goal.
        meter.set_component("idle", 0.1)
        adaptation.start(goal_seconds=1000.0)
        sim.run(until=60.0)
        assert adaptation.importance == 0.0

    def test_importance_relaxes_when_drain_stops(self, sim):
        meter, _battery, adaptation = make_system(sim, capacity=1000.0)
        meter.set_component("cpu", 10.0)
        adaptation.start(goal_seconds=1000.0)
        sim.run(until=30.0)
        peak = adaptation.importance
        assert peak > 0.0
        meter.set_component("cpu", 0.01)
        sim.run(until=200.0)
        assert adaptation.importance < peak

    def test_importance_bounded(self, sim):
        meter, _battery, adaptation = make_system(sim, capacity=100.0)
        meter.set_component("cpu", 50.0)
        adaptation.start(goal_seconds=10_000.0)
        sim.run(until=1.9)
        assert 0.0 <= adaptation.importance <= 1.0

    def test_stop_halts_updates(self, sim):
        meter, _battery, adaptation = make_system(sim)
        meter.set_component("cpu", 10.0)
        adaptation.start(goal_seconds=1000.0)
        sim.run(until=10.0)
        adaptation.stop()
        frozen = adaptation.importance
        sim.run(until=50.0)
        assert adaptation.importance == frozen

    def test_predicted_lifetime(self, sim):
        meter, battery, adaptation = make_system(sim, capacity=1000.0)
        meter.set_component("idle", 2.0)
        adaptation.start(goal_seconds=100.0)
        sim.run(until=10.0)
        lifetime = adaptation.predicted_lifetime_seconds()
        # 980 J remaining at ~2 W -> ~490 s.
        assert lifetime == pytest.approx(490.0, rel=0.1)

    def test_wall_powered_lifetime_is_none(self, sim):
        meter = PowerMeter(sim)
        adaptation = GoalDirectedAdaptation(sim, None, meter)
        assert adaptation.predicted_lifetime_seconds() is None
