"""Unit tests for decision explanation (repro.core.explain) and the CLI."""


import pytest

from repro.cli import EXTRAS, FIGURES, build_parser, main
from repro.coda import FileServer
from repro.core import (
    OperationSpec,
    SpectraNode,
    explain_decision,
    local_plan,
    remote_plan,
)
from repro.hosts import IBM_560X, SERVER_B
from repro.network import Network, SharedMedium
from repro.odyssey import FidelitySpec
from repro.rpc import NullService, RpcTransport
from repro.solver import HeuristicSolver


@pytest.fixture
def world(sim):
    network = Network(sim)
    transport = RpcTransport(sim, network)
    fileserver = FileServer(sim, "fs")
    network.register_host("fs")
    client_node = SpectraNode(sim, network, transport, fileserver,
                              "client", IBM_560X)
    server_node = SpectraNode(sim, network, transport, fileserver,
                              "srv", SERVER_B, with_client=False)
    medium = SharedMedium(sim, 250_000.0)
    network.connect("client", "srv", medium.attach())
    network.connect("client", "fs", medium.attach())
    client_node.register_service(NullService())
    server_node.register_service(NullService())
    client = client_node.require_client()
    # Telemetry is off in tests, so the default solver skips candidate
    # diagnostics; explain_decision's ranking needs them collected.
    client.solver = HeuristicSolver(collect_evaluated=True)
    client.add_server("srv")
    sim.run_process(client.poll_servers())
    spec = OperationSpec("nullop", (local_plan(), remote_plan()),
                         FidelitySpec.fixed())
    sim.run_process(client.register_fidelity(spec))
    return sim, client


def run_op(sim, client, force=None):
    def op():
        handle = yield from client.begin_fidelity_op("nullop", force=force)
        if handle.plan_name == "remote":
            yield from client.do_remote_op(handle, "null", "null")
        else:
            yield from client.do_local_op(handle, "null", "null")
        yield from client.end_fidelity_op(handle)
        return handle
    return sim.run_process(op())


class TestExplainDecision:
    def test_exploration_is_labelled(self, world):
        sim, client = world
        handle = run_op(sim, client)
        text = explain_decision(handle)
        assert "EXPLORATION" in text
        assert "resource snapshot" in text

    def test_solver_decision_shows_ranked_alternatives(self, world):
        sim, client = world
        for _ in range(2):
            run_op(sim, client)  # train both bins
        handle = run_op(sim, client)
        text = explain_decision(handle)
        assert "alternatives considered" in text
        assert "->" in text  # the chosen alternative is marked
        assert "local_cpu" in text or "negligible" in text
        assert "decision overhead" in text

    def test_forced_decision_is_labelled(self, world):
        sim, client = world
        spec = client.operation("nullop").spec
        forced = spec.alternatives(["srv"])[1]
        handle = run_op(sim, client, force=forced)
        text = explain_decision(handle)
        assert "FORCED" in text

    def test_top_limits_listing(self, world):
        sim, client = world
        for _ in range(2):
            run_op(sim, client)
        handle = run_op(sim, client)
        text = explain_decision(handle, top=1)
        assert "more" in text  # "... and N more"

    def test_server_lines_present(self, world):
        sim, client = world
        for _ in range(2):
            run_op(sim, client)
        handle = run_op(sim, client)
        assert "server srv" in explain_decision(handle)


class TestCLI:
    def test_registry_completeness(self):
        assert set(FIGURES) == {f"fig{i}" for i in range(3, 11)}
        assert set(EXTRAS) == {"ablations", "baselines", "parallel",
                               "accuracy"}

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "ablations" in out

    def test_unknown_figure_rejected(self, capsys, tmp_path):
        code = main(["figures", "fig99", "--output", str(tmp_path)])
        assert code == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_fig10_generates_artifact(self, tmp_path, capsys):
        code = main(["figures", "fig10", "--quiet",
                     "--output", str(tmp_path)])
        assert code == 0
        artifact = tmp_path / "fig10.txt"
        assert artifact.exists()
        assert "Figure 10" in artifact.read_text()
        # --quiet suppresses the table on stdout
        assert "Figure 10" not in capsys.readouterr().out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
