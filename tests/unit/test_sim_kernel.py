"""Unit tests for the simulation kernel (repro.sim.kernel)."""

import pytest

from repro.sim import Event, SimulationError, Simulator, Timeout
from repro.sim.kernel import TimerHandle


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_run_until_advances_clock_without_events(self, sim):
        sim.run(until=10.0)
        assert sim.now == 10.0


class TestScheduling:
    def test_call_in_order(self, sim):
        order = []
        sim.call_in(2.0, lambda: order.append("late"))
        sim.call_in(1.0, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]
        assert sim.now == 2.0

    def test_ties_break_by_insertion_order(self, sim):
        order = []
        for i in range(10):
            sim.call_in(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == list(range(10))

    def test_past_scheduling_rejected(self, sim):
        sim.call_in(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.call_in(-0.1, lambda: None)

    def test_nested_scheduling(self, sim):
        seen = []

        def outer():
            seen.append(sim.now)
            sim.call_in(1.0, inner)

        def inner():
            seen.append(sim.now)

        sim.call_in(1.0, outer)
        sim.run()
        assert seen == [1.0, 2.0]

    def test_run_until_stops_before_future_events(self, sim):
        fired = []
        sim.call_in(10.0, lambda: fired.append(True))
        sim.run(until=5.0)
        assert not fired and sim.now == 5.0
        sim.run()
        assert fired and sim.now == 10.0

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_events_processed_counter(self, sim):
        sim.call_in(1.0, lambda: None)
        sim.call_in(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 2

    def test_livelock_guard(self, sim):
        def reschedule():
            sim.call_in(0.0, reschedule)

        sim.call_in(0.0, reschedule)
        with pytest.raises(SimulationError, match="livelock"):
            sim.run(max_events=1000)


class TestTimerHandles:
    def test_timer_fires_once(self, sim):
        fired = []
        handle = sim.timer(1.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.5]
        assert handle.cancelled  # consumed handles read as cancelled

    def test_cancel_is_lazy(self, sim):
        """Cancelling leaves the queue entry; it pops as a no-op."""
        fired = []
        handle = sim.timer(2.0, lambda: fired.append(True))
        handle.cancel()
        assert handle.cancelled
        sim.run()
        assert fired == []
        # The tombstone still popped, so the clock reached its slot and
        # the event was counted — lazy cancel trades one dead pop for
        # O(1) cancellation.
        assert sim.now == 2.0
        assert sim.events_processed == 1

    def test_cancel_after_fire_is_noop(self, sim):
        fired = []
        handle = sim.timer(1.0, lambda: fired.append(True))
        sim.run()
        handle.cancel()
        assert fired == [True]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timer(-0.5, lambda: None)

    def test_repr_shows_state(self):
        handle = TimerHandle(1.25, lambda: None)
        assert "armed" in repr(handle)
        handle.cancel()
        assert "cancelled" in repr(handle)


class TestProcesses:
    def test_run_process_returns_value(self, sim):
        def worker():
            yield Timeout(2.5)
            return "done"

        assert sim.run_process(worker()) == "done"
        assert sim.now == 2.5

    def test_run_process_reraises_failure(self, sim):
        def worker():
            yield Timeout(1.0)
            raise ValueError("inner")

        with pytest.raises(ValueError, match="inner"):
            sim.run_process(worker())

    def test_run_process_stops_at_completion_despite_pending_events(self, sim):
        # A perpetual background ticker must not keep run_process going.
        def ticker():
            while True:
                yield Timeout(1.0)

        def worker():
            yield Timeout(3.5)
            return "ok"

        sim.spawn(ticker())
        assert sim.run_process(worker()) == "ok"
        assert sim.now == pytest.approx(3.5)

    def test_deadlock_detected(self, sim):
        def stuck():
            yield Event()  # nobody will ever trigger this

        with pytest.raises(SimulationError, match="never finished"):
            sim.run_process(stuck())

    def test_run_process_livelock_guard(self, sim):
        # Regression: run_process used to lack the max_events guard
        # run() has, so an infinite zero-delay loop inside an operation
        # hung the suite instead of raising.
        def spinner():
            while True:
                yield Timeout(0.0)

        with pytest.raises(SimulationError, match="livelock"):
            sim.run_process(spinner(), max_events=1000)

    def test_run_process_guard_spares_finite_work(self, sim):
        def worker():
            for _ in range(10):
                yield Timeout(0.1)
            return "ok"

        assert sim.run_process(worker(), max_events=1000) == "ok"

    def test_timeout_event_helper(self, sim):
        event = sim.timeout_event(2.0, value="v")
        sim.run()
        assert event.value == "v" and sim.now == 2.0

    def test_process_composition(self, sim):
        def child():
            yield Timeout(1.0)
            return 21

        def parent():
            value = yield sim.spawn(child())
            return value * 2

        assert sim.run_process(parent()) == 42

    def test_advance(self, sim):
        hits = []
        sim.call_in(1.0, lambda: hits.append(1))
        sim.call_in(5.0, lambda: hits.append(2))
        sim.advance(2.0)
        assert hits == [1] and sim.now == 2.0


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def trace_run():
            sim = Simulator()
            trace = []

            def worker(tag, delay):
                yield Timeout(delay)
                trace.append((tag, sim.now))

            for i in range(20):
                sim.spawn(worker(i, (i * 7) % 5 + 0.5))
            sim.run()
            return trace

        assert trace_run() == trace_run()
