"""Client-side file cache with LRU eviction.

Coda hides server access latency by caching whole files on clients
(paper §3.3.4).  The cache tracks, per file: the cached size, the version
it was fetched at, whether a callback is held, and dirtiness (locally
modified, not yet reintegrated).  Dirty entries are pinned — evicting
un-reintegrated data would lose updates.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional


@dataclass
class CacheEntry:
    path: str
    size: int
    version: int
    has_callback: bool = True
    dirty: bool = False
    #: Coda hoard priority: 0 = ordinary LRU citizen; higher values are
    #: evicted only after every lower-priority clean entry is gone.
    #: Hoarding is how a pervasive client prepares for disconnection —
    #: pin the language model before leaving the office.
    hoard_priority: int = 0


class FileCache:
    """Whole-file LRU cache bounded by total bytes."""

    def __init__(self, capacity_bytes: int = 50 * 1024 * 1024):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._used = 0
        #: standing hoard priorities by path (survive eviction)
        self._hoard_priorities: dict = {}
        #: eviction counter (diagnostics)
        self.evictions = 0

    # -- queries -------------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used

    def __contains__(self, path: str) -> bool:
        return path in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, path: str, touch: bool = True) -> Optional[CacheEntry]:
        entry = self._entries.get(path)
        if entry is not None and touch:
            self._entries.move_to_end(path)
        return entry

    def entries(self) -> List[CacheEntry]:
        """Snapshot of all entries, LRU → MRU order."""
        return list(self._entries.values())

    def cached_paths(self) -> List[str]:
        return list(self._entries.keys())

    def dirty_entries(self) -> List[CacheEntry]:
        return [e for e in self._entries.values() if e.dirty]

    # -- mutation ------------------------------------------------------------------

    def insert(self, path: str, size: int, version: int,
               dirty: bool = False) -> CacheEntry:
        """Add or replace an entry, evicting LRU clean entries to fit.

        A file larger than the whole cache raises — Coda refuses such
        fetches, and callers should treat them as permanent misses.
        Re-inserting a hoarded path keeps its hoard priority (a refetch
        does not unpin).
        """
        if size > self.capacity_bytes:
            raise ValueError(
                f"file {path!r} ({size} B) exceeds cache capacity "
                f"({self.capacity_bytes} B)"
            )
        old = self._entries.pop(path, None)
        priority = old.hoard_priority if old is not None else (
            self._hoard_priorities.get(path, 0)
        )
        if old is not None:
            self._used -= old.size
        self._evict_to_fit(size)
        entry = CacheEntry(path=path, size=size, version=version,
                           dirty=dirty, hoard_priority=priority)
        self._entries[path] = entry
        self._used += size
        return entry

    def set_hoard_priority(self, path: str, priority: int) -> None:
        """Pin (or unpin, with 0) a path at a hoard priority.

        The priority survives eviction and refetch: it describes the
        *path*, not the currently cached bytes — like a Coda hoard
        database entry.
        """
        if priority < 0:
            raise ValueError(f"negative hoard priority: {priority}")
        if priority == 0:
            self._hoard_priorities.pop(path, None)
        else:
            self._hoard_priorities[path] = priority
        entry = self._entries.get(path)
        if entry is not None:
            entry.hoard_priority = priority

    def hoarded_paths(self):
        """Paths with a standing hoard priority, highest first."""
        return [path for path, _p in sorted(
            self._hoard_priorities.items(), key=lambda kv: (-kv[1], kv[0])
        )]

    def evict(self, path: str) -> bool:
        """Drop an entry (callback break or explicit flush).

        Dirty entries are never silently dropped — raises instead, since
        that would lose buffered updates.
        """
        entry = self._entries.get(path)
        if entry is None:
            return False
        if entry.dirty:
            raise RuntimeError(f"refusing to evict dirty entry {path!r}")
        del self._entries[path]
        self._used -= entry.size
        return True

    def invalidate(self, path: str) -> None:
        """Mark a cached copy stale (callback broken) without evicting.

        Stale-but-present copies still occupy space; the next access
        revalidates and refetches.  Dirty entries keep their data — Coda
        resolves the conflict at reintegration (we model last-writer-wins,
        adequate for the paper's single-writer workloads).
        """
        entry = self._entries.get(path)
        if entry is not None:
            entry.has_callback = False

    def mark_dirty(self, path: str, new_size: int) -> CacheEntry:
        entry = self._entries.get(path)
        if entry is None:
            raise KeyError(f"cannot dirty uncached file {path!r}")
        self._used += new_size - entry.size
        entry.size = new_size
        entry.dirty = True
        self._entries.move_to_end(path)
        return entry

    def mark_clean(self, path: str, version: int) -> None:
        entry = self._entries.get(path)
        if entry is not None:
            entry.dirty = False
            entry.version = version
            entry.has_callback = True

    def _evict_to_fit(self, incoming: int) -> None:
        while self._used + incoming > self.capacity_bytes:
            victim = self._first_clean()
            if victim is None:
                raise RuntimeError(
                    "cache full of dirty entries; reintegrate before fetching"
                )
            del self._entries[victim.path]
            self._used -= victim.size
            self.evictions += 1

    def _first_clean(self) -> Optional[CacheEntry]:
        """The eviction victim: lowest hoard priority, then LRU."""
        candidates = [e for e in self._entries.values() if not e.dirty]
        if not candidates:
            return None
        lowest = min(e.hoard_priority for e in candidates)
        for entry in self._entries.values():  # LRU order within the tier
            if not entry.dirty and entry.hoard_priority == lowest:
                return entry
        return None
