"""Property-based tests for fault recovery invariants (hypothesis).

Whatever fault lands mid-operation — a server crash, a partition, a
bandwidth collapse — the system must come back clean: no concurrency
slot left in the client's active set, no byte job still consuming link
bandwidth, and the next (fault-free) operation runs non-concurrent.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coda import FileServer
from repro.core import (
    NoFeasibleAlternativeError,
    OperationSpec,
    SpectraNode,
    local_plan,
    remote_plan,
)
from repro.faults import FaultEvent, FaultInjector
from repro.hosts import IBM_560X, SERVER_B
from repro.network import Link, Network, SharedMedium
from repro.odyssey import FidelitySpec
from repro.rpc import NullService, RpcTransport
from repro.sim import Simulator


def build_testbed():
    """Minimal client + one server + file server (fresh sim)."""
    sim = Simulator()
    network = Network(sim)
    transport = RpcTransport(sim, network)
    fileserver = FileServer(sim, "fs")
    network.register_host("fs")
    client_node = SpectraNode(sim, network, transport, fileserver,
                              "client", IBM_560X)
    server_node = SpectraNode(sim, network, transport, fileserver,
                              "srv", SERVER_B, with_client=False)
    medium = SharedMedium(sim, 250_000.0, default_latency_s=0.002)
    network.connect("client", "srv", medium.attach())
    network.connect("client", "fs", medium.attach())
    network.connect("srv", "fs", Link(sim, 500_000.0, 0.001))
    for node in (client_node, server_node):
        node.register_service(NullService())
    client = client_node.require_client()
    client.add_server("srv")
    sim.run_process(client.poll_servers())

    spec = OperationSpec("nullop", (local_plan(), remote_plan()),
                         FidelitySpec.fixed())
    sim.run_process(client.register_fidelity(spec))
    return sim, network, medium, client, server_node


def run_op(sim, client, indata_bytes=0):
    def op():
        handle = yield from client.begin_fidelity_op("nullop")
        if handle.plan_name == "remote":
            yield from client.do_remote_op(handle, "null", "null",
                                           indata_bytes=indata_bytes)
        else:
            yield from client.do_local_op(handle, "null", "null",
                                          indata_bytes=indata_bytes)
        report = yield from client.end_fidelity_op(handle)
        return handle, report
    return sim.run_process(op())


def assert_clean(sim, client, medium):
    """The recovery invariants: nothing leaked, next op runs clean."""
    assert client._active == []
    assert medium.active_transfers == 0
    _handle, report = run_op(sim, client)
    assert not report.concurrent


actions = st.sampled_from(["crash_server", "partition",
                           "degrade_bandwidth"])


@given(
    action=actions,
    delay_s=st.floats(min_value=0.0, max_value=5.0),
    outage_s=st.floats(min_value=0.5, max_value=60.0),
    indata_kb=st.integers(min_value=0, max_value=256),
)
@settings(max_examples=25, deadline=None)
def test_mid_op_fault_leaves_no_leaks(action, delay_s, outage_s, indata_kb):
    """Any fault during an unforced remote op: the op completes (via
    failover, or by stalling until recovery) and the system ends clean."""
    sim, network, medium, client, server_node = build_testbed()
    run_op(sim, client)  # explores the local bin

    value = 0.0 if action == "degrade_bandwidth" else None
    target = "srv" if action == "crash_server" else ("client", "srv")
    injector = FaultInjector(sim, network, {"srv": server_node.server})
    injector.schedule(FaultEvent(sim.now + delay_s, action, target, value))
    recovery = {"crash_server": "restart_server", "partition": "heal",
                "degrade_bandwidth": "restore_bandwidth"}[action]
    injector.schedule(FaultEvent(sim.now + delay_s + outage_s,
                                 recovery, target))

    # The second unforced op explores the remote bin, so the fault can
    # land before, during, or after its RPC depending on the draw.
    handle, report = run_op(sim, client, indata_bytes=indata_kb * 1024)
    assert handle.finished
    sim.run()  # drain the recovery event and any stragglers
    assert_clean(sim, client, medium)


@given(delay_s=st.floats(min_value=0.0, max_value=2.0))
@settings(max_examples=15, deadline=None)
def test_crash_without_local_plan_fails_clean(delay_s):
    """When no alternative survives the fault, the typed error must
    propagate — and still leak nothing."""
    sim, network, medium, client, server_node = build_testbed()
    spec = OperationSpec("remoteonly", (remote_plan(),),
                         FidelitySpec.fixed())
    sim.run_process(client.register_fidelity(spec))
    injector = FaultInjector(sim, network, {"srv": server_node.server})
    injector.schedule(FaultEvent(sim.now + delay_s, "crash_server", "srv"))
    injector.schedule(FaultEvent(sim.now + delay_s + 120.0,
                                 "restart_server", "srv"))

    def op():
        handle = yield from client.begin_fidelity_op("remoteonly")
        yield from client.do_remote_op(handle, "null", "null",
                                       indata_bytes=512 * 1024)
        yield from client.end_fidelity_op(handle)

    try:
        sim.run_process(op())
    except NoFeasibleAlternativeError:
        pass
    sim.run()
    sim.run_process(client.poll_servers())
    assert_clean(sim, client, medium)
