"""Host substrate: CPU models, hardware profiles, and machine composition."""

from .cpu import CPU, BackgroundLoad
from .host import Host
from .profiles import (
    IBM_560X,
    IBM_T20,
    ITSY_V22,
    PROFILES,
    SERVER_A,
    SERVER_B,
    HostProfile,
    get_profile,
)

__all__ = [
    "BackgroundLoad",
    "CPU",
    "Host",
    "HostProfile",
    "IBM_560X",
    "IBM_T20",
    "ITSY_V22",
    "PROFILES",
    "SERVER_A",
    "SERVER_B",
    "get_profile",
]
