"""Unit tests for the per-function CFG (repro.analysis.flow.cfg).

The graph's contract, relied on by the SPC102/103 path checks:

* statement granularity, two synthetic exits (return vs raise);
* exception edges exactly at suspension points (yield/await), raises,
  asserts, and — with a predicate — calls into can-raise callees;
* ``try``/``except``/``finally`` routing: handlers catch, broad
  handlers absorb, ``finally`` runs on every route out;
* exception-free code gets **no** invented raise paths.
"""

import ast

import pytest

from repro.analysis.flow.cfg import EXIT_RAISE, EXIT_RETURN, build_cfg


def cfg_of(source, raising_call=None):
    tree = ast.parse(source)
    func = tree.body[0]
    return build_cfg(func, raising_call), func


def reachable_exits(cfg, start=None):
    """Which synthetic exits are reachable from *start* (or entry)."""
    seen = set()
    queue = [cfg.entry if start is None else start]
    while queue:
        node = queue.pop()
        if node in seen:
            continue
        seen.add(node)
        queue.extend(cfg.successors(node))
    return {n for n in seen if cfg.is_exit(n)}


def stmt_id(cfg, func, lineno):
    for stmt, node_id in cfg.ids.items():
        if getattr(stmt, "lineno", None) == lineno:
            return node_id
    raise AssertionError(f"no statement at line {lineno}")


class TestLinearAndBranching:
    def test_straight_line_reaches_return_only(self):
        cfg, _ = cfg_of("def f(a):\n    b = a + 1\n    return b\n")
        assert reachable_exits(cfg) == {EXIT_RETURN}
        assert cfg.exception_sources == set()

    def test_if_else_both_arms_reach_exit(self):
        cfg, func = cfg_of(
            "def f(a):\n"
            "    if a:\n"
            "        x = 1\n"
            "    else:\n"
            "        x = 2\n"
            "    return x\n"
        )
        assert reachable_exits(cfg) == {EXIT_RETURN}
        # Both arms flow into the return.
        ret = stmt_id(cfg, func, 6)
        assert ret in cfg.successors(stmt_id(cfg, func, 3))
        assert ret in cfg.successors(stmt_id(cfg, func, 5))

    def test_fall_off_end_is_a_return(self):
        cfg, _ = cfg_of("def f(a):\n    a += 1\n")
        assert reachable_exits(cfg) == {EXIT_RETURN}

    def test_while_loop_back_edge_and_exit(self):
        cfg, func = cfg_of(
            "def f(n):\n"
            "    while n:\n"
            "        n -= 1\n"
            "    return n\n"
        )
        loop = stmt_id(cfg, func, 2)
        body = stmt_id(cfg, func, 3)
        assert loop in cfg.successors(body)          # back edge
        assert stmt_id(cfg, func, 4) in cfg.successors(loop)

    def test_break_and_continue_edges(self):
        cfg, func = cfg_of(
            "def f(items):\n"
            "    for item in items:\n"
            "        if item:\n"
            "            break\n"
            "        continue\n"
            "    return 0\n"
        )
        loop = stmt_id(cfg, func, 2)
        after = stmt_id(cfg, func, 6)
        assert cfg.successors(stmt_id(cfg, func, 4)) == {after}
        assert cfg.successors(stmt_id(cfg, func, 5)) == {loop}


class TestExceptionEdges:
    def test_yield_is_an_exception_source(self):
        cfg, func = cfg_of(
            "def f(network):\n"
            "    yield from network.transfer(1)\n"
            "    return 1\n"
        )
        assert stmt_id(cfg, func, 2) in cfg.exception_sources
        assert reachable_exits(cfg) == {EXIT_RETURN, EXIT_RAISE}

    def test_raise_goes_only_to_raise_exit(self):
        cfg, func = cfg_of("def f():\n    raise ValueError()\n")
        assert cfg.successors(stmt_id(cfg, func, 2)) == {EXIT_RAISE}

    def test_plain_calls_are_not_sources_by_default(self):
        cfg, _ = cfg_of("def f(x):\n    g(x)\n    return x\n")
        assert cfg.exception_sources == set()
        assert reachable_exits(cfg) == {EXIT_RETURN}

    def test_raising_call_predicate_adds_sources(self):
        source = "def f(x):\n    g(x)\n    return x\n"
        cfg, func = cfg_of(source, raising_call=lambda call: True)
        assert stmt_id(cfg, func, 2) in cfg.exception_sources
        assert reachable_exits(cfg) == {EXIT_RETURN, EXIT_RAISE}

    def test_handler_catches_matching_route(self):
        cfg, func = cfg_of(
            "def f(network):\n"
            "    try:\n"
            "        yield from network.transfer(1)\n"
            "    except ValueError:\n"
            "        pass\n"
            "    return 1\n"
        )
        # The yield's exception edge enters the handler, not the exit —
        # but a narrow handler does not absorb, so EXIT_RAISE stays
        # reachable for the exception types it does not match.
        yielded = stmt_id(cfg, func, 3)
        handler_body = stmt_id(cfg, func, 5)
        reached = set()
        queue = [yielded]
        while queue:
            node = queue.pop()
            if node in reached:
                continue
            reached.add(node)
            queue.extend(cfg.successors(node))
        assert handler_body in reached
        assert EXIT_RAISE in reachable_exits(cfg)

    def test_broad_handler_absorbs(self):
        cfg, _ = cfg_of(
            "def f(network):\n"
            "    try:\n"
            "        yield from network.transfer(1)\n"
            "    except Exception:\n"
            "        pass\n"
            "    return 1\n"
        )
        assert reachable_exits(cfg) == {EXIT_RETURN}


class TestFinallyRouting:
    def test_finally_runs_on_exception_route(self):
        cfg, func = cfg_of(
            "def f(network, span):\n"
            "    try:\n"
            "        yield from network.transfer(1)\n"
            "    finally:\n"
            "        span.end()\n"
            "    return 1\n"
        )
        # Every path from the yield to EXIT_RAISE passes the finally.
        yielded = stmt_id(cfg, func, 3)
        closer = stmt_id(cfg, func, 5)
        leak = cfg.find_path(yielded, lambda n: n == closer)
        assert leak is None
        assert EXIT_RAISE in reachable_exits(cfg)

    def test_finally_runs_on_return_route(self):
        cfg, func = cfg_of(
            "def f(span):\n"
            "    try:\n"
            "        return 1\n"
            "    finally:\n"
            "        span.end()\n"
        )
        ret = stmt_id(cfg, func, 3)
        closer = stmt_id(cfg, func, 5)
        assert cfg.find_path(ret, lambda n: n == closer) is None
        assert reachable_exits(cfg) == {EXIT_RETURN}

    def test_exception_free_try_finally_has_no_raise_path(self):
        cfg, _ = cfg_of(
            "def f(span):\n"
            "    try:\n"
            "        x = 1\n"
            "    finally:\n"
            "        span.end()\n"
            "    return x\n"
        )
        # No exception source anywhere: the finally must not invent a
        # raise route (that is the SPC102 false-positive trap).
        assert reachable_exits(cfg) == {EXIT_RETURN}


class TestFindPath:
    def test_path_found_around_one_armed_close(self):
        cfg, func = cfg_of(
            "def f(span, flag):\n"
            "    span = span.start()\n"
            "    if flag:\n"
            "        span.end()\n"
            "    return flag\n"
        )
        start = stmt_id(cfg, func, 2)
        closer = stmt_id(cfg, func, 4)
        path = cfg.find_path(start, lambda n: n == closer)
        assert path is not None
        assert path[-1] == EXIT_RETURN
        assert closer not in path

    def test_no_path_when_every_route_stopped(self):
        cfg, func = cfg_of(
            "def f(span):\n"
            "    span = span.start()\n"
            "    span.end()\n"
            "    return 1\n"
        )
        start = stmt_id(cfg, func, 2)
        closer = stmt_id(cfg, func, 3)
        assert cfg.find_path(start, lambda n: n == closer) is None

    def test_start_at_stopped_node_is_none(self):
        cfg, func = cfg_of("def f():\n    x = 1\n    return x\n")
        start = stmt_id(cfg, func, 2)
        assert cfg.find_path(start, lambda n: n == start) is None


class TestWithAndMatch:
    def test_with_body_flows_through(self):
        cfg, _ = cfg_of(
            "def f(tracer):\n"
            "    with tracer.span('op'):\n"
            "        x = 1\n"
            "    return x\n"
        )
        assert EXIT_RETURN in reachable_exits(cfg)

    def test_match_arms_all_reach_exit(self):
        cfg, func = cfg_of(
            "def f(x):\n"
            "    match x:\n"
            "        case 1:\n"
            "            y = 'one'\n"
            "        case _:\n"
            "            y = 'many'\n"
            "    return y\n"
        )
        ret = stmt_id(cfg, func, 7)
        assert ret in cfg.successors(stmt_id(cfg, func, 4))
        assert ret in cfg.successors(stmt_id(cfg, func, 6))
