"""Compile a scenario's environment timeline onto the fault machinery.

The spec's timeline speaks the environment's language — bandwidth ramps,
latency spikes, partitions, server churn, each with an optional end time
— and compiles down to the :class:`~repro.faults.FaultSchedule` /
:class:`~repro.faults.FaultInjector` pair PR 4 built: one inject event
plus (when ``until_s`` is set) the matching recovery event.  Reusing
that layer means scenario timelines inherit its guarantees for free:
idempotent application, in-flight transfer aborts on partition/crash,
a journal of what actually landed, and the ``faults.injected`` counter.
"""

from __future__ import annotations

from ..faults import FaultEvent, FaultSchedule
from .spec import PAIR_TIMELINE_KINDS, TIMELINE_KINDS, ScenarioSpec


def compile_timeline(spec: ScenarioSpec) -> FaultSchedule:
    """The spec's timeline as an installable fault schedule.

    Times in the schedule are offsets from the start of the measured
    phase; shift with :meth:`~repro.faults.FaultSchedule.shifted` before
    installing (the runner anchors them after training/settle).
    """
    events = []
    for entry in spec.timeline:
        inject, recover = TIMELINE_KINDS[entry.kind]
        target = (entry.pair_target if entry.kind in PAIR_TIMELINE_KINDS
                  else entry.target)
        events.append(FaultEvent(entry.at_s, inject, target, entry.value))
        if entry.until_s is not None:
            events.append(FaultEvent(entry.until_s, recover, target))
    return FaultSchedule(events)
