"""Integration tests: the §4.1 speech recognition claims (Figures 3–4).

These run the full stack — testbed, training, scenario, measurement of
all six alternatives, and Spectra's own decision — and assert the shape
claims the paper makes.
"""

import pytest

from repro.apps import make_speech_spec
from repro.experiments.speech import (
    ENERGY_SCENARIO_C,
    run_speech_scenario,
)

spec = make_speech_spec()


@pytest.fixture(scope="module")
def results():
    return {
        scenario: run_speech_scenario(scenario)
        for scenario in ("baseline", "energy", "network", "cpu", "filecache")
    }


def by_label(result):
    return {m.label: m for m in result.measurements}


class TestBaseline:
    def test_local_plan_3_to_9x_slower(self, results):
        """'The local execution plan is clearly inferior to the hybrid
        and remote plans, taking 3-9 times as long to execute.'"""
        m = by_label(results["baseline"])
        local = m["local [vocab=full]"].time_s
        for other in ("hybrid@t20 [vocab=full]", "remote@t20 [vocab=full]"):
            ratio = local / m[other].time_s
            assert 3.0 <= ratio <= 9.0, f"{other}: ratio {ratio:.1f}"

    def test_hybrid_beats_remote(self, results):
        """'Using the hybrid plan and performing some computation locally
        takes less time than using the remote execution plan.'"""
        m = by_label(results["baseline"])
        assert (m["hybrid@t20 [vocab=full]"].time_s
                < m["remote@t20 [vocab=full]"].time_s)

    def test_spectra_chooses_hybrid_full(self, results):
        """'In the baseline scenario, Spectra correctly chooses the
        hybrid plan and the full vocabulary.'"""
        choice = results["baseline"].spectra.choice
        assert choice.plan.name == "hybrid"
        assert choice.fidelity_dict()["vocab"] == "full"

    def test_overhead_is_minimal(self, results):
        """Spectra's measured run is close to the forced run of the same
        alternative ('the overhead is minimal')."""
        result = results["baseline"]
        m = by_label(result)
        forced = m[result.spectra.label].time_s
        assert result.spectra.time_s <= forced * 1.10


class TestEnergyScenario:
    def test_spectra_chooses_remote_full(self, results):
        """'Since energy is critical, Spectra chooses the remote
        execution plan and the full vocabulary.'"""
        choice = results["energy"].spectra.choice
        assert choice.plan.name == "remote"
        assert choice.fidelity_dict()["vocab"] == "full"

    def test_hybrid_faster_but_hungrier(self, results):
        """'Although hybrid execution takes less time, it consumes more
        energy because a portion of the computation is done on the
        client.'"""
        m = by_label(results["energy"])
        hybrid = m["hybrid@t20 [vocab=full]"]
        remote = m["remote@t20 [vocab=full]"]
        assert hybrid.time_s < remote.time_s
        assert hybrid.energy_j > remote.energy_j

    def test_energy_importance_is_set(self, results):
        assert results["energy"].energy_importance == ENERGY_SCENARIO_C


class TestNetworkScenario:
    def test_halved_bandwidth_penalizes_remote_more(self, results):
        base = by_label(results["baseline"])
        slow = by_label(results["network"])
        remote_delta = (slow["remote@t20 [vocab=full]"].time_s
                        - base["remote@t20 [vocab=full]"].time_s)
        hybrid_delta = (slow["hybrid@t20 [vocab=full]"].time_s
                        - base["hybrid@t20 [vocab=full]"].time_s)
        assert remote_delta > hybrid_delta

    def test_spectra_chooses_hybrid(self, results):
        """'This makes remote execution undesirable, and Spectra
        correctly chooses to use the hybrid plan and full vocabulary.'"""
        choice = results["network"].spectra.choice
        assert choice.plan.name == "hybrid"
        assert choice.fidelity_dict()["vocab"] == "full"


class TestCPUScenario:
    def test_spectra_chooses_remote(self, results):
        """'The cost of local computation increases, making the remote
        execution plan more attractive than the hybrid plan.'"""
        assert results["cpu"].spectra.choice.plan.name == "remote"

    def test_remote_now_beats_hybrid(self, results):
        m = by_label(results["cpu"])
        assert (m["remote@t20 [vocab=full]"].time_s
                < m["hybrid@t20 [vocab=full]"].time_s)


class TestFileCacheScenario:
    def test_remote_plans_infeasible(self, results):
        """The Spectra server is partitioned away."""
        m = by_label(results["filecache"])
        assert not m["remote@t20 [vocab=full]"].feasible
        assert not m["hybrid@t20 [vocab=full]"].feasible

    def test_full_about_3x_slower_than_reduced(self, results):
        """'full-quality recognition would be approximately 3 times
        slower' (the 277 KB language model must be refetched)."""
        m = by_label(results["filecache"])
        ratio = m["local [vocab=full]"].time_s / m["local [vocab=reduced]"].time_s
        assert 2.2 <= ratio <= 4.0

    def test_spectra_degrades_fidelity(self, results):
        """'Spectra anticipates the cache miss and chooses to use
        reduced-quality recognition.'"""
        choice = results["filecache"].spectra.choice
        assert choice.plan.name == "local"
        assert choice.fidelity_dict()["vocab"] == "reduced"


class TestDecisionQuality:
    def test_spectra_always_near_best(self, results):
        """Across every scenario Spectra's percentile is high and its
        relative utility close to the oracle (the paper's headline)."""
        for scenario, result in results.items():
            assert result.percentile(spec) >= 80, scenario
            assert result.relative_utility(spec) >= 0.85, scenario
