"""Violation reporters: text for humans, JSON for machines.

Both render the same :class:`~repro.analysis.core.Violation` list; the
JSON form is stable (sorted keys, schema documented here) so CI and
editor integrations can parse it without guessing:

.. code-block:: json

    {
      "violations": [{"rule": "...", "path": "...", "line": 1,
                      "col": 0, "message": "..."}],
      "counts": {"SPC001": 2},
      "total": 2
    }
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List

from .core import Violation


def render_text(violations: List[Violation], files_checked: int = 0) -> str:
    """One finding per line plus a per-rule summary footer."""
    lines = [violation.render() for violation in violations]
    if violations:
        counts = Counter(violation.rule for violation in violations)
        summary = ", ".join(f"{rule}×{count}"
                            for rule, count in sorted(counts.items()))
        lines.append(f"{len(violations)} violation"
                     f"{'s' if len(violations) != 1 else ''} ({summary})")
    else:
        suffix = f" across {files_checked} files" if files_checked else ""
        lines.append(f"clean{suffix}: no sim-safety violations")
    return "\n".join(lines)


def render_json(violations: List[Violation], files_checked: int = 0) -> str:
    counts: Dict[str, int] = dict(
        Counter(violation.rule for violation in violations)
    )
    payload = {
        "violations": [violation.to_dict() for violation in violations],
        "counts": counts,
        "total": len(violations),
        "files_checked": files_checked,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


REPORTERS = {
    "text": render_text,
    "json": render_json,
}
