"""The analysis driver: files in, violations out.

Responsibilities split cleanly:

* :func:`analyze_source` — run the (scoped, enabled) rule pack over one
  already-read source string, honoring inline suppressions;
* :func:`analyze_file` / :func:`analyze_paths` — the filesystem layer:
  expand directories to ``*.py`` files, read them, surface unreadable
  or unparseable files as violations (``SPC000`` / ``SPC999``) instead
  of exceptions.

The engine's hard guarantee — relied on by the property tests — is that
it **never raises** on any input path or text: a rule that crashes is
reported as an ``SPC000`` finding naming the rule and the error, so a
rule-pack bug fails the lint run loudly without taking the tool down.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from .core import (
    INTERNAL_CODE,
    RULE_REGISTRY,
    SYNTAX_CODE,
    Rule,
    RuleConfig,
    SourceFile,
    Violation,
    all_rules,
)
from .suppressions import is_suppressed, suppressed_lines

#: Directory names never descended into during path expansion.
SKIP_DIRS = {".git", "__pycache__", ".venv", "venv", "node_modules",
             ".mypy_cache", ".ruff_cache", ".pytest_cache", "build", "dist"}


@dataclass
class LintConfig:
    """Engine-level configuration: rule selection plus per-rule configs."""

    #: explicit allow-list of rule codes; None = all registered rules
    select: Optional[Sequence[str]] = None
    #: rule codes to drop after selection
    ignore: Sequence[str] = ()
    #: per-rule overrides, keyed by code
    rules: Dict[str, RuleConfig] = field(default_factory=dict)

    def rule_config(self, code: str) -> RuleConfig:
        return self.rules.setdefault(code, RuleConfig())

    def active_rules(self) -> List[Rule]:
        selected = {code.upper() for code in self.select} \
            if self.select is not None else None
        ignored = {code.upper() for code in self.ignore}
        unknown = ((selected or set()) | ignored) - set(RULE_REGISTRY)
        if unknown:
            # A typo in --select silently linting nothing would defeat
            # the CI gate; make it a loud usage error instead.
            raise ValueError(
                f"unknown rule code(s): {', '.join(sorted(unknown))}"
            )
        active = []
        for rule in all_rules():
            if selected is not None and rule.code not in selected:
                continue
            if rule.code in ignored:
                continue
            if not self.rule_config(rule.code).enabled:
                continue
            active.append(rule)
        return active


def analyze_source(path: str, text: str,
                   config: Optional[LintConfig] = None) -> List[Violation]:
    """Lint one source string; never raises."""
    config = config if config is not None else LintConfig()
    try:
        tree = ast.parse(text, filename=path)
    except (SyntaxError, ValueError) as exc:
        # ValueError: source with null bytes.
        line = getattr(exc, "lineno", None) or 1
        col = (getattr(exc, "offset", None) or 1) - 1
        return [Violation(rule=SYNTAX_CODE, path=path, line=line,
                          col=max(col, 0),
                          message=f"file does not parse: {exc.__class__.__name__}: {exc}")]

    source = SourceFile(path, text, tree)
    suppressions = suppressed_lines(text)
    violations: List[Violation] = []
    for rule in config.active_rules():
        rule_config = config.rule_config(rule.code)
        if not rule.applies_to(source, rule_config):
            continue
        try:
            found = list(rule.check(source, rule_config))
        except Exception as exc:
            # A rule bug must fail the lint run visibly, not crash it.
            violations.append(Violation(
                rule=INTERNAL_CODE, path=path, line=1, col=0,
                message=(f"rule {rule.code} ({rule.name}) crashed: "
                         f"{exc.__class__.__name__}: {exc}"),
            ))
            continue
        violations.extend(
            v for v in found
            if not is_suppressed(suppressions, v.line, v.rule)
        )
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def analyze_file(path: str,
                 config: Optional[LintConfig] = None) -> List[Violation]:
    """Read and lint one file; unreadable files become SPC000 findings."""
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            text = fh.read()
    except OSError as exc:
        return [Violation(rule=INTERNAL_CODE, path=path, line=1, col=0,
                          message=f"cannot read file: {exc}")]
    return analyze_source(path, text, config)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories to a sorted, de-duplicated ``*.py`` list."""
    seen = set()
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d not in SKIP_DIRS)
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        full = os.path.join(dirpath, filename)
                        if full not in seen:
                            seen.add(full)
                            yield full
        else:
            # Non-existent paths flow through so analyze_file can report
            # them as findings rather than the walker silently skipping.
            if path not in seen:
                seen.add(path)
                yield path


def analyze_paths(paths: Sequence[str],
                  config: Optional[LintConfig] = None) -> List[Violation]:
    """Lint every Python file under *paths*; never raises."""
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(analyze_file(path, config))
    return violations
