"""The ``repro scenario`` command group: list, validate, run.

``repro scenario list``
    Every canned scenario with its one-line description.

``repro scenario validate [NAME-or-PATH ...]``
    Validate canned scenarios and/or JSON spec files; no arguments
    validates the whole canned library.  Exits 1 on the first invalid
    spec, printing every path-qualified problem.

``repro scenario run NAME-or-PATH [--seed N] [--profile full|smoke]``
    Compile and run a scenario, print the summary, and write the
    deterministic JSON report to ``--output`` — the same spec and seed
    produce a byte-identical report file on every run.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import textwrap

import dataclasses

from .library import SCENARIOS, canned_spec
from .runner import PROFILES, render_report, run_scenario
from .spec import ScenarioError, ScenarioSpec
from .sweep import run_sweep, sweep_to_json


def add_scenario_arguments(parser: argparse.ArgumentParser,
                           common: argparse.ArgumentParser) -> None:
    """Wire the ``scenario`` sub-subcommands onto *parser*."""
    sub = parser.add_subparsers(dest="scenario_command", required=True)

    sub.add_parser("list", help="list the canned scenario library")

    validate = sub.add_parser(
        "validate",
        help="validate canned scenarios and/or JSON spec files",
    )
    validate.add_argument(
        "names", nargs="*",
        help="canned scenario names or paths to JSON spec files "
             "(default: the whole canned library)",
    )

    run = sub.add_parser(
        "run", parents=[common],
        help="run a scenario and write its deterministic JSON report",
    )
    run.add_argument("name",
                     help="canned scenario name or path to a JSON spec")
    run.add_argument("--seed", type=int, default=None,
                     help="override the spec's seed")
    run.add_argument("--profile", default="full", choices=PROFILES,
                     help="run profile (default: full; smoke = CI-sized)")
    run.add_argument("--predictor-store", default=None, metavar="DIR",
                     help="warm-start demand predictors from this store "
                          "directory (per-client scopes)")
    run.add_argument("--save-predictors", action="store_true",
                     help="flush learned predictor state back to "
                          "--predictor-store after the run")

    sweep = sub.add_parser(
        "sweep", parents=[common],
        help="run seeded variants of a scenario across worker processes",
        description="Fan --variants seeded realizations of one scenario "
                    "over --jobs worker processes and merge them into a "
                    "single deterministic spectra-sweep/1 JSON document "
                    "— byte-identical for any job count.",
    )
    sweep.add_argument("name",
                       help="canned scenario name or path to a JSON spec")
    sweep.add_argument("--variants", type=int, default=4,
                       help="seeded traffic realizations (default: 4)")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (default: 1 = in-process)")
    sweep.add_argument("--seed", type=int, default=None,
                       help="override the spec's base seed")
    sweep.add_argument("--profile", default="smoke", choices=PROFILES,
                       help="run profile (default: smoke)")
    sweep.add_argument("--predictor-store", default=None, metavar="DIR",
                       help="warm-start predictors from per-variant scopes "
                            "under this store directory")
    sweep.add_argument("--save-predictors", action="store_true",
                       help="flush each variant's learned predictor state "
                            "back to its scope under --predictor-store")


def _load_spec(name: str) -> ScenarioSpec:
    """A spec from a canned name or a JSON file path (not yet validated)."""
    if name in SCENARIOS:
        return SCENARIOS[name]()
    path = pathlib.Path(name)
    if path.suffix == ".json" or path.exists():
        try:
            text = path.read_text()
        except OSError as exc:
            raise ValueError(f"cannot read scenario file {name!r}: {exc}")
        return ScenarioSpec.from_json(text)
    raise ValueError(
        f"unknown scenario {name!r}; known: {', '.join(sorted(SCENARIOS))} "
        f"(or pass a path to a JSON spec)"
    )


def run_scenario_command(args: argparse.Namespace) -> int:
    if args.scenario_command == "list":
        for name in sorted(SCENARIOS):
            spec = canned_spec(name)
            print(name)
            print(textwrap.indent(textwrap.fill(spec.description, 72),
                                  "    "))
        return 0

    if args.scenario_command == "validate":
        names = list(args.names) or sorted(SCENARIOS)
        for name in names:
            try:
                _load_spec(name).validate()
            except (ScenarioError, ValueError) as exc:
                print(f"{name}: INVALID\n{exc}", file=sys.stderr)
                return 1
            print(f"{name}: ok")
        return 0

    if args.scenario_command == "sweep":
        try:
            spec = _load_spec(args.name)
            if args.seed is not None:
                spec = dataclasses.replace(spec, seed=args.seed)
            doc = run_sweep(spec, variants=args.variants, jobs=args.jobs,
                            profile=args.profile,
                            predictor_store=args.predictor_store,
                            save_predictors=args.save_predictors)
        except (ScenarioError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        output_dir = pathlib.Path(args.output)
        output_dir.mkdir(parents=True, exist_ok=True)
        sweep_path = output_dir / f"sweep-{spec.name}.json"
        sweep_path.write_text(sweep_to_json(doc))
        summary = doc["summary"]
        if not args.quiet:
            latency = summary["latency_mean_s"]
            print(f"sweep {spec.name!r}: {summary['variants']} variants, "
                  f"{summary['completed']}/{summary['ops']} ops completed")
            print(f"  latency mean_s: min {latency['min']:.3f} "
                  f"mean {latency['mean']:.3f} max {latency['max']:.3f}")
            print(f"[sweep written to {sweep_path}]")
        return 0 if summary["completed"] == summary["ops"] else 1

    # run
    try:
        spec = _load_spec(args.name)
    except (ScenarioError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        report = run_scenario(spec, profile=args.profile, seed=args.seed,
                              predictor_store=args.predictor_store,
                              save_predictors=args.save_predictors)
    except (ScenarioError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    output_dir = pathlib.Path(args.output)
    output_dir.mkdir(parents=True, exist_ok=True)
    report_path = output_dir / f"scenario-{spec.name}.json"
    report_path.write_text(report.to_json())
    if not args.quiet:
        print(render_report(report))
        print(f"[report written to {report_path}]")
    return 0 if report.completed else 1
