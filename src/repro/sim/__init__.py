"""Deterministic discrete-event simulation kernel.

This package is the time substrate for the whole Spectra reproduction:
hosts, networks, batteries, the Coda file system, and the Spectra runtime
all advance through simulated seconds scheduled on one
:class:`~repro.sim.kernel.Simulator`.
"""

from .events import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)
from .fairshare_legacy import LegacyFairShareResource
from .kernel import Simulator, TimerHandle
from .process import Process
from .resources import FairShareJob, FairShareResource, Mutex, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Event",
    "FairShareJob",
    "FairShareResource",
    "Interrupt",
    "LegacyFairShareResource",
    "Mutex",
    "Process",
    "SimulationError",
    "Simulator",
    "Store",
    "TimerHandle",
    "Timeout",
]
