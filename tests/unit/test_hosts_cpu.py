"""Unit tests for the CPU model (repro.hosts.cpu)."""

import pytest

from repro.hosts import CPU, BackgroundLoad


@pytest.fixture
def cpu(sim):
    return CPU(sim, cycles_per_second=100e6)


class TestAccounting:
    def test_cycles_attributed_to_owner(self, sim, cpu):
        job = cpu.submit(50e6, owner="op1")
        sim.run()
        assert cpu.cycles_used_by("op1") == pytest.approx(50e6)
        assert cpu.cycles_used_by("other") == 0.0

    def test_in_flight_cycles_visible(self, sim, cpu):
        cpu.submit(100e6, owner="op1")
        sim.run(until=0.25)
        assert cpu.cycles_used_by("op1") == pytest.approx(25e6)

    def test_multiple_jobs_same_owner_accumulate(self, sim, cpu):
        cpu.submit(10e6, owner="op")
        sim.run()
        cpu.submit(20e6, owner="op")
        sim.run()
        assert cpu.cycles_used_by("op") == pytest.approx(30e6)

    def test_single_job_duration(self, sim, cpu):
        job = cpu.submit(200e6, owner="op")
        sim.run()
        assert job.finished_at == pytest.approx(2.0)

    def test_run_helper(self, sim, cpu):
        def worker():
            job = yield from cpu.run(100e6, owner="op")
            return sim.now

        assert sim.run_process(worker()) == pytest.approx(1.0)


class TestFairSharing:
    def test_two_operations_share(self, sim, cpu):
        a = cpu.submit(100e6, owner="a")
        b = cpu.submit(100e6, owner="b")
        sim.run()
        assert a.finished_at == pytest.approx(2.0)
        assert b.finished_at == pytest.approx(2.0)

    def test_background_load_weight(self, sim, cpu):
        load = BackgroundLoad(sim, cpu, nprocesses=3)
        load.start()
        job = cpu.submit(100e6, owner="op")
        sim.run(until=10.0)
        # Weight-3 background + weight-1 op: op gets 1/4 of the CPU.
        assert job.finished_at == pytest.approx(4.0)
        load.stop()

    def test_background_load_stop_restores_capacity(self, sim, cpu):
        load = BackgroundLoad(sim, cpu, nprocesses=1)
        load.start()
        sim.advance(1.0)
        load.stop()
        job = cpu.submit(100e6, owner="op")
        start = sim.now
        sim.run(until=sim.now + 10.0)
        assert job.finished_at - start == pytest.approx(1.0)

    def test_background_load_requires_processes(self, sim, cpu):
        with pytest.raises(ValueError):
            BackgroundLoad(sim, cpu, nprocesses=0)


class TestSupplyPrediction:
    def test_idle_cpu_predicts_full_rate(self, sim, cpu):
        assert cpu.predicted_rate_for_new_job() == pytest.approx(100e6)

    def test_external_load_reduces_prediction(self, sim, cpu):
        load = BackgroundLoad(sim, cpu, nprocesses=1)
        load.start()
        sim.advance(30.0)  # let the smoothed estimate saturate
        rate = cpu.predicted_rate_for_new_job()
        # Competing with 1 background process: ~half the CPU.
        assert rate == pytest.approx(50e6, rel=0.1)
        load.stop()

    def test_own_operations_do_not_project_forward(self, sim, cpu):
        # A just-finished operation burst must not depress the predicted
        # rate (the paper measures "cycles recently used by OTHER
        # processes").
        cpu.submit(500e6, owner="op")  # 5 s of solid work
        sim.run()
        assert cpu.predicted_rate_for_new_job() == pytest.approx(100e6)

    def test_instantaneous_competition_counts_everyone(self, sim, cpu):
        cpu.submit(1e9, owner="op1")
        cpu.submit(1e9, owner="op2", weight=2.0)
        assert cpu.instantaneous_competition() == pytest.approx(3.0)
        assert cpu.instantaneous_competition(exclude_owner="op2") == (
            pytest.approx(1.0)
        )

    def test_smoothed_utilization_decays_after_load_stops(self, sim, cpu):
        load = BackgroundLoad(sim, cpu, nprocesses=1)
        load.start()
        sim.advance(30.0)
        load.stop()
        assert cpu.smoothed_utilization() > 0.5
        sim.advance(30.0)
        assert cpu.smoothed_utilization() < 0.1


class TestCancel:
    def test_cancel_removes_job(self, sim, cpu):
        job = cpu.submit(1e9, owner="op")
        sim.advance(1.0)
        cpu.cancel(job)
        # Cancelled job keeps its partial cycles attributed.
        assert cpu.cycles_used_by("op") == pytest.approx(100e6)
        assert cpu.active_jobs == 0
