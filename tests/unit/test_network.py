"""Unit tests for the network substrate (repro.network)."""

import pytest

from repro.network import (
    Link,
    Network,
    NoRouteError,
    SharedMedium,
    TransferAbortedError,
    TransferLog,
    TransferRecord,
)


class TestLink:
    def test_transfer_time_is_latency_plus_serialization(self, sim):
        link = Link(sim, bandwidth_bps=1000.0, latency_s=0.5)

        def push():
            return (yield from link.transmit(2000))

        assert sim.run_process(push()) == pytest.approx(2.5)

    def test_zero_bytes_pays_latency_only(self, sim):
        link = Link(sim, bandwidth_bps=1000.0, latency_s=0.25)

        def push():
            return (yield from link.transmit(0))

        assert sim.run_process(push()) == pytest.approx(0.25)

    def test_concurrent_transfers_share_bandwidth(self, sim):
        link = Link(sim, bandwidth_bps=1000.0, latency_s=0.0)
        done = []

        def push(tag, nbytes):
            elapsed = yield from link.transmit(nbytes)
            done.append((tag, sim.now))

        sim.spawn(push("a", 1000))
        sim.spawn(push("b", 1000))
        sim.run()
        # Both share 1000 B/s: each finishes at t=2.
        assert dict(done) == {"a": 2.0, "b": 2.0}

    def test_bandwidth_change_affects_inflight(self, sim):
        link = Link(sim, bandwidth_bps=1000.0, latency_s=0.0)

        def push():
            return (yield from link.transmit(1000))

        sim.call_in(0.5, lambda: link.set_bandwidth(500.0))
        assert sim.run_process(push()) == pytest.approx(0.5 + 0.5 * 1000 / 500)

    def test_estimate_reflects_contention(self, sim):
        link = Link(sim, bandwidth_bps=1000.0, latency_s=0.1)
        assert link.estimate_transfer_time(1000) == pytest.approx(1.1)
        job = link._resource.submit(1e9)
        assert link.estimate_transfer_time(1000) == pytest.approx(2.1)

    def test_negative_latency_rejected(self, sim):
        with pytest.raises(ValueError):
            Link(sim, 1000.0, -0.1)


class TestSharedMedium:
    def test_views_contend_globally(self, sim):
        medium = SharedMedium(sim, bandwidth_bps=1000.0,
                              default_latency_s=0.0)
        view1 = medium.attach()
        view2 = medium.attach()
        finished = {}

        def push(view, tag):
            yield from view.transmit(1000)
            finished[tag] = sim.now

        sim.spawn(push(view1, "v1"))
        sim.spawn(push(view2, "v2"))
        sim.run()
        # Different host pairs, same airtime: both take 2 s.
        assert finished == {"v1": 2.0, "v2": 2.0}

    def test_per_view_latency(self, sim):
        medium = SharedMedium(sim, 1000.0, default_latency_s=0.001)
        near = medium.attach(latency_s=0.001)
        far = medium.attach(latency_s=0.1)
        assert near.latency_s == 0.001
        assert far.latency_s == 0.1

    def test_bandwidth_change_propagates_to_views(self, sim):
        medium = SharedMedium(sim, 1000.0)
        view = medium.attach()
        medium.set_bandwidth(500.0)
        assert view.bandwidth_bps == 500.0


class TestNetworkTopology:
    @pytest.fixture
    def net(self, sim):
        network = Network(sim)
        network.register_host("a")
        network.register_host("b")
        network.connect("a", "b", Link(sim, 1000.0, 0.1))
        return network

    def test_transfer_logs_record(self, sim, net):
        def push():
            return (yield from net.transfer("a", "b", 500, kind="bulk"))

        elapsed = sim.run_process(push())
        assert elapsed == pytest.approx(0.6)
        assert len(net.log) == 1
        record = list(net.log)[0]
        assert (record.src, record.dst, record.nbytes) == ("a", "b", 500)
        assert record.elapsed == pytest.approx(0.6)

    def test_loopback_is_free_and_unlogged(self, sim, net):
        def push():
            return (yield from net.transfer("a", "a", 10_000))

        assert sim.run_process(push()) == 0.0
        assert len(net.log) == 0

    def test_interface_counters(self, sim, net):
        def push():
            yield from net.transfer("a", "b", 500)

        sim.run_process(push())
        assert net.interface("a").bytes_sent == 500
        assert net.interface("b").bytes_received == 500

    def test_tx_rx_power_callbacks(self, sim, net):
        events = []
        net.interface("a").on_tx_change = lambda active: events.append(
            ("tx", active)
        )
        net.interface("b").on_rx_change = lambda active: events.append(
            ("rx", active)
        )

        def push():
            yield from net.transfer("a", "b", 500)

        sim.run_process(push())
        assert events == [("tx", True), ("rx", True),
                          ("tx", False), ("rx", False)]

    def test_no_route_raises(self, sim, net):
        net.register_host("c")
        with pytest.raises(NoRouteError):
            net.link_between("a", "c")
        assert not net.connected("a", "c")

    def test_disconnect(self, sim, net):
        assert net.connected("a", "b")
        net.disconnect("a", "b")
        assert not net.connected("a", "b")

    def test_connect_requires_registered_hosts(self, sim, net):
        with pytest.raises(NoRouteError):
            net.connect("a", "ghost", Link(sim, 1.0, 0.0))

    def test_negative_transfer_rejected(self, sim, net):
        with pytest.raises(ValueError):
            list(net.transfer("a", "b", -1))


class TestTransferLog:
    def make_record(self, nbytes, t0=0.0, t1=1.0, kind="bulk"):
        return TransferRecord(src="a", dst="b", nbytes=nbytes,
                              started_at=t0, finished_at=t1, kind=kind)

    def test_recent_filters_by_time(self):
        log = TransferLog()
        log.append(self.make_record(100, 0.0, 1.0))
        log.append(self.make_record(200, 5.0, 6.0))
        assert [r.nbytes for r in log.recent(2.0)] == [200]

    def test_endpoint_filter_is_bidirectional(self):
        log = TransferLog()
        log.append(TransferRecord("a", "b", 1, 0, 1))
        log.append(TransferRecord("b", "a", 2, 0, 1))
        log.append(TransferRecord("a", "c", 3, 0, 1))
        pair = log.recent(0.0, endpoint=("a", "b"))
        assert sorted(r.nbytes for r in pair) == [1, 2]

    def test_short_vs_bulk_split(self):
        log = TransferLog()
        log.append(self.make_record(100, kind="rpc"))
        log.append(self.make_record(100_000, kind="bulk"))
        assert [r.nbytes for r in log.recent_short(0.0)] == [100]
        assert [r.nbytes for r in log.recent_bulk(0.0)] == [100_000]

    def test_bounded_size(self):
        log = TransferLog(max_records=10)
        for i in range(25):
            log.append(self.make_record(i, t0=i, t1=i + 1))
        assert len(log) <= 10
        # Newest records survive.
        assert list(log)[-1].nbytes == 24

    def test_throughput(self):
        record = self.make_record(500, 0.0, 2.0)
        assert record.throughput == pytest.approx(250.0)


class TestLinkFailures:
    def test_zero_bandwidth_estimate_is_infinite(self, sim):
        """Regression: a jammed link used to divide by zero."""
        link = Link(sim, bandwidth_bps=1000.0, latency_s=0.1)
        link.set_bandwidth(0.0)
        assert link.estimate_transfer_time(500) == float("inf")
        # Zero bytes still only pay latency, even when jammed.
        assert link.estimate_transfer_time(0) == pytest.approx(0.1)

    def test_zero_bandwidth_estimate_on_medium_view(self, sim):
        medium = SharedMedium(sim, 1000.0, default_latency_s=0.01)
        view = medium.attach()
        medium.set_bandwidth(0.0)
        assert view.estimate_transfer_time(500) == float("inf")

    def test_network_estimate_propagates_infinity(self, sim):
        network = Network(sim)
        network.register_host("a")
        network.register_host("b")
        link = Link(sim, 1000.0, 0.1)
        network.connect("a", "b", link)
        link.set_bandwidth(0.0)
        assert network.estimate_transfer_time("a", "b", 500) == float("inf")

    def test_abort_transfers_fails_waiters(self, sim):
        link = Link(sim, bandwidth_bps=1000.0, latency_s=0.0)
        failures = []

        def push():
            try:
                yield from link.transmit(10_000)
            except TransferAbortedError as exc:
                failures.append(str(exc))

        sim.spawn(push())
        sim.spawn(push())
        sim.advance(0.5)
        assert link.abort_transfers("storm") == 2
        sim.run()
        assert failures == ["storm", "storm"]
        assert link.active_transfers == 0

    def test_medium_view_abort_is_pair_scoped(self, sim):
        medium = SharedMedium(sim, 1000.0, default_latency_s=0.0)
        view_ab = medium.attach(name="a-b")
        view_cd = medium.attach(name="c-d")
        fates = {}

        def push(view, key):
            try:
                yield from view.transmit(10_000)
                fates[key] = "done"
            except TransferAbortedError:
                fates[key] = "aborted"

        sim.spawn(push(view_ab, "ab"))
        sim.spawn(push(view_cd, "cd"))
        sim.advance(0.5)
        # Severing one pair leaves the rest of the medium's traffic up.
        assert view_ab.abort_transfers() == 1
        sim.run()
        assert fates == {"ab": "aborted", "cd": "done"}
        assert medium.active_transfers == 0

    def test_disconnect_aborts_in_flight_by_default(self, sim):
        network = Network(sim)
        network.register_host("a")
        network.register_host("b")
        network.connect("a", "b", Link(sim, 1000.0, 0.0))
        outcome = {}

        def push():
            try:
                yield from network.transfer("a", "b", 10_000)
            except TransferAbortedError as exc:
                outcome["error"] = str(exc)

        sim.spawn(push())
        sim.advance(0.5)
        removed = network.disconnect("a", "b")
        sim.run()
        assert "partition" in outcome["error"]
        assert removed is not None
        assert network.disconnect("a", "b") is None  # already gone

    def test_links_of_returns_adjacent_links(self, sim):
        network = Network(sim)
        for host in ("a", "b", "c"):
            network.register_host(host)
        ab = Link(sim, 1000.0, 0.0)
        bc = Link(sim, 1000.0, 0.0)
        network.connect("a", "b", ab)
        network.connect("b", "c", bc)
        links = network.links_of("b")
        assert links == {("a", "b"): ab, ("b", "c"): bc}
        assert network.links_of("a") == {("a", "b"): ab}
