"""The solver's search space and result types.

The space of one placement decision is the cross product

    plans × servers (for remote plans) × fidelity points

structured into *coordinates* so the heuristic solver can walk it one
axis at a time.  Pangloss-Lite's space — 2 placements per engine-ish
choices × servers — reaches 100 alternatives; the speech recognizer's is
6; a null operation's is 1 + #servers.

Because a :class:`SearchSpace` is a pure function of ``(spec, servers)``
it is also a natural cache unit: the client re-decides placement on
every ``begin_fidelity_op``, but between polls the reachable-server set
rarely changes, so :class:`SpaceCache` memoizes whole spaces per
``(operation, servers)`` key.  A cached space keeps its own decode and
neighbor memos warm across solves, which is where most of the per-
decision allocation cost used to go (see ``repro bench``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.operation import OperationSpec
from ..core.plans import Alternative, ExecutionPlan
from ..core.utility import AlternativePrediction

PredictFn = Callable[[Alternative], AlternativePrediction]
UtilityFn = Callable[[AlternativePrediction], float]


@dataclass
class SolverResult:
    """Outcome of one search."""

    best: Optional[AlternativePrediction]
    utility: float
    #: distinct alternatives predicted+scored (cache misses)
    evaluations: int
    #: total utility-function consultations, including revisits during
    #: the ascent — the quantity decision CPU time is charged on (a real
    #: solver has no memo table; see OverheadModel.choose_per_eval_cycles)
    visits: int = 0
    #: every evaluated alternative with its utility.  Diagnostics only:
    #: populated when the solver was built with ``collect_evaluated=True``
    #: (explain/forensics need it; steady-state decisions do not, and a
    #: 100-alternative Pangloss space would otherwise materialize every
    #: prediction on every operation).
    evaluated: List[Tuple[AlternativePrediction, float]] = field(
        default_factory=list
    )

    @property
    def found(self) -> bool:
        return self.best is not None and self.utility > float("-inf")


class SearchSpace:
    """Coordinate-structured view of an operation's alternatives.

    Decode and neighbor lookups are memoized per state: a space that is
    reused across solves (via :class:`SpaceCache`) hands the solver the
    *same* :class:`Alternative` objects every time, so per-alternative
    caches further down (``OperationSpec.decision_context``) stay warm
    too.
    """

    def __init__(self, spec: OperationSpec, servers: Sequence[str]):
        self.spec = spec
        self.servers: Tuple[str, ...] = tuple(servers)
        # With no reachable servers, remote plans are not part of the
        # space at all (decoding them would have no server to name).
        self.plans: Tuple[ExecutionPlan, ...] = tuple(
            p for p in spec.plans if not p.uses_remote or self.servers
        )
        self.fidelity_dims = spec.fidelity.dimensions
        self._alternatives = tuple(
            a for a in spec.alternatives(self.servers)
            if any(p.name == a.plan.name for p in self.plans)
        )
        self._sizes: Optional[Tuple[int, ...]] = None
        self._decoded: Dict[Tuple[int, ...], Alternative] = {}
        self._neighbors: Dict[Tuple[int, ...], Tuple[Tuple[int, ...], ...]] = {}

    def all_alternatives(self) -> Tuple[Alternative, ...]:
        return self._alternatives

    def size(self) -> int:
        return len(self._alternatives)

    # -- coordinate encoding ----------------------------------------------------------

    def encode(self, alternative: Alternative) -> Tuple[int, ...]:
        """State vector: (plan index, server index, fid indices...)."""
        plan_idx = next(
            i for i, p in enumerate(self.plans) if p.name == alternative.plan.name
        )
        if alternative.server is None:
            server_idx = 0
        else:
            server_idx = self.servers.index(alternative.server)
        fid = alternative.fidelity_dict()
        fid_idx = tuple(
            dim.index_of(fid[dim.name]) for dim in self.fidelity_dims
        )
        return (plan_idx, server_idx) + fid_idx

    def decode(self, state: Tuple[int, ...]) -> Alternative:
        alternative = self._decoded.get(state)
        if alternative is None:
            plan = self.plans[state[0]]
            server = self.servers[state[1]] if plan.uses_remote else None
            fidelity = {
                dim.name: dim.values[state[2 + i]]
                for i, dim in enumerate(self.fidelity_dims)
            }
            alternative = Alternative.build(plan, server, fidelity)
            self._decoded[state] = alternative
        return alternative

    def coordinate_sizes(self) -> Tuple[int, ...]:
        sizes = self._sizes
        if sizes is None:
            sizes = self._sizes = (
                (len(self.plans), max(len(self.servers), 1))
                + tuple(len(dim.values) for dim in self.fidelity_dims)
            )
        return sizes

    def neighbors(self, state: Tuple[int, ...]) -> Tuple[Tuple[int, ...], ...]:
        """States differing from *state* in exactly one coordinate."""
        cached = self._neighbors.get(state)
        if cached is None:
            sizes = self.coordinate_sizes()
            out = []
            for axis, size in enumerate(sizes):
                for value in range(size):
                    if value == state[axis]:
                        continue
                    candidate = list(state)
                    candidate[axis] = value
                    out.append(tuple(candidate))
            cached = self._neighbors[state] = tuple(out)
        return cached


class SpaceCache:
    """LRU of :class:`SearchSpace` per ``(operation, servers)`` key.

    The key embeds the reachable-server tuple, so ordinary reachability
    churn (a poll marking a server down, a later poll restoring it)
    self-invalidates by keying to a different entry.  Explicit
    :meth:`invalidate` exists for events that change the *meaning* of a
    key without changing its spelling — server discovery (a new proxy
    for a name the cache may have embedded) and mid-operation failover
    (the failed server's capabilities are now suspect).
    """

    def __init__(self, maxsize: int = 32):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1: {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Tuple[str, Tuple[str, ...]], SearchSpace]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, spec: OperationSpec,
            servers: Sequence[str]) -> SearchSpace:
        """The memoized space for ``(spec.name, servers)``."""
        key = (spec.name, tuple(servers))
        space = self._entries.get(key)
        if space is not None and space.spec is spec:
            self.hits += 1
            self._entries.move_to_end(key)
            return space
        # A same-named but distinct spec object (re-registration in
        # tests) must not serve a stale space.
        self.misses += 1
        space = SearchSpace(spec, servers)
        self._entries[key] = space
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return space

    def invalidate(self) -> None:
        """Drop every cached space (discovery / failover events)."""
        self._entries.clear()
