"""Extension benchmark: multi-client contention.

N identical clients share one wireless LAN and one compute server and
run Latex simultaneously.  Per-client Spectra instances — which only
see each other through their resource monitors — should match blind
offloading while the server has headroom, then spill work to local
execution as contention grows.
"""

import pytest

from repro.experiments import (
    render_contention_table,
    run_contention_experiment,
)

from conftest import cached, save_figure


def _cells():
    return cached("contention",
                  lambda: run_contention_experiment((1, 2, 4, 8)))


@pytest.mark.benchmark(group="extensions")
def test_multi_client_contention(benchmark, results_dir):
    cells = benchmark.pedantic(_cells, rounds=1, iterations=1)
    save_figure(results_dir, "extension_contention",
                render_contention_table(cells))

    by_count = {cell.n_clients: cell for cell in cells}

    # With headroom, Spectra agrees with offloading (no false spills).
    for n in (1, 2):
        assert by_count[n].spectra_local_count == 0
        assert by_count[n].advantage == pytest.approx(1.0, abs=0.05)

    # Under heavy contention Spectra spills some clients to local
    # execution and beats the blind policy.
    heavy = by_count[8]
    assert heavy.spectra_local_count >= 2
    assert heavy.advantage >= 1.1

    # Blind offloading degrades superlinearly; Spectra degrades slower.
    assert (by_count[8].always_remote_mean_s
            > 3.0 * by_count[1].always_remote_mean_s)
    assert (by_count[8].spectra_mean_s
            < by_count[8].always_remote_mean_s)
