"""The pre-virtual-time fair-share scheduler, kept as a reference model.

This is the original :class:`~repro.sim.resources.FairShareResource`
algorithm: on **every** membership or capacity change it *settles* —
rolls each active job's remaining work forward to ``now``, O(n) — and
then *reschedules* by scanning every job for the earliest upcoming
completion, another O(n).  A burst of n arrivals therefore costs O(n²),
which is what capped scenarios at tens of clients.

The shipping scheduler (:class:`~repro.sim.resources.FairShareResource`)
replaces this with virtual-time (GPS) accounting: O(1) per membership
change plus O(log n) per completion.  The two must be *behaviorally
equivalent* — same completion times, same completion order, same
service totals — and this module is how that is proven rather than
assumed:

* the hypothesis equivalence suite
  (``tests/property/test_fairshare_equivalence.py``) drives both
  schedulers through randomized submit/abort/capacity-change schedules
  and compares outcomes, and
* the ``contended_medium`` macro benchmark (``repro bench --suite
  kernel``) runs a 500-job contention storm through both, reports the
  speedup in ``BENCH_kernel.json``, and sets its ``same_results`` flag
  only when the completion sequences match.

Keep this implementation boring and unoptimized — its value is being
obviously correct.  It shares :class:`~repro.sim.resources.FairShareJob`
with the shipping scheduler so callers (and the bench) can treat the
two interchangeably.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from .events import SimulationError
from .kernel import Simulator
from .resources import FairShareJob


class LegacyFairShareResource:
    """Settle-and-rescan processor sharing (the pre-optimization model).

    API-compatible with :class:`~repro.sim.resources.FairShareResource`;
    see that class for semantics.  Every membership change is O(n),
    every contention burst O(n²).
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: float,
        name: str = "resource",
        on_utilization_change: Optional[Callable[[float, bool, int], None]] = None,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self._sim = sim
        self._capacity = float(capacity)
        self.name = name
        self._jobs: List[FairShareJob] = []
        self._last_update: dict = {}
        self._remaining: dict = {}
        self._timer_token = 0
        self._on_utilization_change = on_utilization_change
        self.total_served = 0.0

    # -- public API -----------------------------------------------------------

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def active_jobs(self) -> int:
        return len(self._jobs)

    @property
    def busy(self) -> bool:
        return bool(self._jobs)

    def set_capacity(self, capacity: float) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative: {capacity}")
        self._settle()
        self._capacity = float(capacity)
        self._reschedule()
        self._notify()

    def submit(self, amount: float, weight: float = 1.0) -> FairShareJob:
        job = FairShareJob(amount, weight=weight)
        job.started_at = self._sim.now
        if job.amount <= 0:
            job.finished_at = self._sim.now
            job.done.succeed(job)
            return job
        self._settle()
        self._jobs.append(job)
        job._resource = self
        self._remaining[id(job)] = job.amount
        self._last_update[id(job)] = self._sim.now
        self._reschedule()
        self._notify()
        return job

    def cancel(self, job: FairShareJob) -> None:
        self.abort(job, SimulationError(f"job cancelled on {self.name}"))

    def abort(self, job: FairShareJob,
              exc: Optional[BaseException] = None) -> bool:
        if job not in self._jobs:
            return False
        self._settle()
        self._jobs.remove(job)
        job._detached_remaining = self._remaining.pop(id(job))
        job._resource = None
        self._last_update.pop(id(job), None)
        job.done.fail(exc if exc is not None
                      else SimulationError(f"job aborted on {self.name}"))
        self._reschedule()
        self._notify()
        return True

    def abort_all(self, exc_factory: Callable[[], BaseException]) -> int:
        count = 0
        for job in list(self._jobs):
            if self.abort(job, exc_factory()):
                count += 1
        return count

    def run(self, amount: float, weight: float = 1.0) -> Generator:
        job = self.submit(amount, weight=weight)
        yield job.done
        return job

    def rate_for_new_job(self, weight: float = 1.0) -> float:
        if self._capacity <= 0:
            return 0.0
        total_weight = sum(j.weight for j in self._jobs) + weight
        return self._capacity * weight / total_weight

    def remaining_of(self, job: FairShareJob) -> float:
        """Remaining work of an active job as of the last settle."""
        return self._remaining.get(id(job), 0.0)

    def _job_remaining(self, job: FairShareJob) -> float:
        """`FairShareJob.remaining` backend while the job is in service."""
        return self._remaining[id(job)]

    # -- internals ---------------------------------------------------------------

    def _total_weight(self) -> float:
        return sum(job.weight for job in self._jobs)

    def _settle(self) -> None:
        """Roll each active job's remaining work forward to `now`: O(n)."""
        now = self._sim.now
        if not self._jobs:
            return
        total_weight = self._total_weight()
        for job in self._jobs:
            key = id(job)
            elapsed = now - self._last_update[key]
            if elapsed > 0:
                served = self._capacity * (job.weight / total_weight) * elapsed
                served = min(served, self._remaining[key])
                self._remaining[key] -= served
                self.total_served += served
            self._last_update[key] = now

    def _reschedule(self) -> None:
        """Scan every job for the earliest completion: O(n) + a timer."""
        self._timer_token += 1
        if not self._jobs or self._capacity <= 0:
            return
        token = self._timer_token
        total_weight = self._total_weight()
        soonest = min(
            self._remaining[id(job)]
            / (self._capacity * job.weight / total_weight)
            for job in self._jobs
        )
        soonest = max(soonest, 0.0)
        self._sim.call_in(soonest, lambda: self._on_timer(token))

    def _on_timer(self, token: int) -> None:
        if token != self._timer_token:
            return  # superseded by a membership change
        self._settle()
        tolerance = max(1e-9, 1e-12 * self._capacity)
        finished = [job for job in self._jobs
                    if self._remaining[id(job)] <= tolerance]
        self._jobs = [job for job in self._jobs
                      if self._remaining[id(job)] > tolerance]
        now = self._sim.now
        for job in finished:
            self._remaining.pop(id(job), None)
            self._last_update.pop(id(job), None)
            job._detached_remaining = 0.0
            job._resource = None
            job.finished_at = now
            job.done.succeed(job)
        self._reschedule()
        if finished:
            self._notify()

    def _notify(self) -> None:
        if self._on_utilization_change is not None:
            self._on_utilization_change(self._sim.now, self.busy, len(self._jobs))
