"""CLI surface of the deep pass and the baseline ratchet.

Exercises exactly what CI runs: ``repro lint --deep`` over a tree,
``--baseline write`` / ``--baseline check`` as the ratchet, SARIF as
the code-scanning artifact, and the usage guards that keep a typoed
invocation from silently linting nothing.
"""

import json

import pytest

from repro.analysis.cli import main as lint_main

#: A span leaking over the exception edge of its yield — SPC102's
#: canonical finding, invisible to the lexical SPC003.
LEAKY = (
    "def leaky(tracer, network):\n"
    "    span = tracer.start_span('op')\n"
    "    yield from network.transfer(1)\n"
    "    span.end()\n"
)

FIXED = (
    "def leaky(tracer, network):\n"
    "    with tracer.start_span('op'):\n"
    "        yield from network.transfer(1)\n"
)

CLEAN = "def add(a, b):\n    return a + b\n"


def tree_with(tmp_path, text):
    target = tmp_path / "src" / "repro" / "sim" / "fixture.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text)
    return target


class TestDeepFlag:
    def test_shallow_pass_misses_the_path_leak(self, tmp_path):
        tree_with(tmp_path, LEAKY)
        assert lint_main([str(tmp_path)]) == 0

    def test_deep_pass_finds_it(self, tmp_path, capsys):
        tree_with(tmp_path, LEAKY)
        assert lint_main(["--deep", str(tmp_path)]) == 1
        assert "SPC102" in capsys.readouterr().out

    def test_select_spc1xx_without_deep_is_a_usage_error(self,
                                                         tmp_path, capsys):
        tree_with(tmp_path, LEAKY)
        assert lint_main(["--select", "SPC102", str(tmp_path)]) == 2
        assert "add --deep" in capsys.readouterr().err

    def test_select_spc1xx_with_deep_runs(self, tmp_path):
        tree_with(tmp_path, LEAKY)
        assert lint_main(["--select", "SPC102", "--deep",
                          str(tmp_path)]) == 1

    def test_list_rules_marks_deep_pack(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("SPC101", "SPC102", "SPC103", "SPC104", "SPC105"):
            assert code in out
        assert "[--deep]" in out


class TestBaselineRatchet:
    def baseline_args(self, tmp_path, mode):
        return ["--deep", "--baseline", mode,
                "--baseline-file", str(tmp_path / "baseline.json"),
                str(tmp_path)]

    def test_write_then_check_is_green(self, tmp_path, capsys):
        tree_with(tmp_path, LEAKY)
        assert lint_main(self.baseline_args(tmp_path, "write")) == 0
        assert "1 grandfathered finding" in capsys.readouterr().out
        assert lint_main(self.baseline_args(tmp_path, "check")) == 0
        err = capsys.readouterr().err
        assert "1 grandfathered finding" in err

    def test_new_finding_fails_the_check(self, tmp_path, capsys):
        target = tree_with(tmp_path, LEAKY)
        assert lint_main(self.baseline_args(tmp_path, "write")) == 0
        capsys.readouterr()
        # A second, new leak appears: only it fails the gate.
        target.write_text(LEAKY + "\n\n" + LEAKY.replace("leaky", "worse"))
        assert lint_main(self.baseline_args(tmp_path, "check")) == 1
        out = capsys.readouterr().out
        assert "worse" in out and "SPC102" in out

    def test_fixing_the_finding_reports_stale(self, tmp_path, capsys):
        target = tree_with(tmp_path, LEAKY)
        assert lint_main(self.baseline_args(tmp_path, "write")) == 0
        capsys.readouterr()
        target.write_text(FIXED)
        assert lint_main(self.baseline_args(tmp_path, "check")) == 0
        assert "stale baseline" in capsys.readouterr().err

    def test_check_without_baseline_is_a_usage_error(self, tmp_path,
                                                     capsys):
        tree_with(tmp_path, CLEAN)
        assert lint_main(self.baseline_args(tmp_path, "check")) == 2
        assert "baseline write" in capsys.readouterr().err


class TestSarifOutput:
    def test_deep_findings_render_as_sarif(self, tmp_path, capsys):
        tree_with(tmp_path, LEAKY)
        assert lint_main(["--deep", "--format", "sarif",
                          str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        (run,) = payload["runs"]
        assert run["tool"]["driver"]["name"] == "spectra-lint"
        assert any(r["ruleId"] == "SPC102" for r in run["results"])

    def test_clean_tree_renders_empty_sarif(self, tmp_path, capsys):
        tree_with(tmp_path, CLEAN)
        assert lint_main(["--deep", "--format", "sarif",
                          str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["results"] == []
