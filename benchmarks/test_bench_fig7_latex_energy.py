"""Figure 7: Latex energy usage (the battery-powered energy scenario).

Figure 7(a) explains the paper's most counter-intuitive decision: for
the small document Spectra picks server B *even though it is slower
than local execution*, because B uses slightly less client energy —
"Because energy is of paramount concern, Spectra opts for energy
savings over faster execution time."
"""

import pytest

from repro.apps import make_latex_spec
from repro.experiments import render_bar_figure, run_latex_experiment

from conftest import cached, save_figure

spec = make_latex_spec()


def _latex_results():
    return cached("latex", run_latex_experiment)


@pytest.mark.benchmark(group="figures")
def test_fig7_latex_energy(benchmark, results_dir):
    results = benchmark.pedantic(_latex_results, rounds=1, iterations=1)
    energy = {
        "energy/small": results[("energy", "small")],
        "energy/large": results[("energy", "large")],
    }

    save_figure(results_dir, "fig7_latex_energy", render_bar_figure(
        "Figure 7: Latex energy usage (joules, energy scenario)",
        spec, energy, metric="energy",
    ))

    def axis(result, field):
        return {m.alternative.server or "local": getattr(m, field)
                for m in result.measurements}

    # 7(a): small document — B saves energy but not time.
    small = energy["energy/small"]
    joules = axis(small, "energy_j")
    times = axis(small, "time_s")
    assert joules["server-b"] < joules["local"]
    assert times["server-b"] > times["local"]
    assert small.spectra.choice.server == "server-b"

    # 7(b): large document — B saves both.
    large = energy["energy/large"]
    joules = axis(large, "energy_j")
    times = axis(large, "time_s")
    assert joules["server-b"] < joules["local"]
    assert times["server-b"] < times["local"]
    assert large.spectra.choice.server == "server-b"
