"""Figure 3: speech recognition execution time.

Regenerates the paper's Figure 3 — execution time for every (plan ×
vocabulary) alternative plus Spectra's own choice, across the five
resource scenarios on the Itsy/T20 testbed — and asserts the figure's
shape claims.
"""

import pytest

from repro.apps import make_speech_spec
from repro.experiments import render_bar_figure, run_speech_experiment

from conftest import cached, save_figure

spec = make_speech_spec()


def _speech_results():
    return cached("speech", run_speech_experiment)


@pytest.mark.benchmark(group="figures")
def test_fig3_speech_execution_time(benchmark, results_dir):
    results = benchmark.pedantic(_speech_results, rounds=1, iterations=1)

    save_figure(results_dir, "fig3_speech_time", render_bar_figure(
        "Figure 3: Speech recognition execution time (seconds)",
        spec, results, metric="time",
    ))

    # Shape assertions from the paper's §4.1 narrative.
    baseline = {m.label: m.time_s for m in results["baseline"].measurements}
    local = baseline["local [vocab=full]"]
    hybrid = baseline["hybrid@t20 [vocab=full]"]
    remote = baseline["remote@t20 [vocab=full]"]
    assert 3.0 <= local / hybrid <= 9.0     # "3-9 times as long"
    assert 3.0 <= local / remote <= 9.0
    assert hybrid < remote                  # hybrid wins the baseline

    assert results["baseline"].spectra.choice.plan.name == "hybrid"
    assert results["energy"].spectra.choice.plan.name == "remote"
    assert results["network"].spectra.choice.plan.name == "hybrid"
    assert results["cpu"].spectra.choice.plan.name == "remote"
    filecache_choice = results["filecache"].spectra.choice
    assert filecache_choice.plan.name == "local"
    assert filecache_choice.fidelity_dict()["vocab"] == "reduced"

    # Spectra is within a whisker of the best alternative everywhere.
    for scenario, result in results.items():
        assert result.percentile(spec) >= 80, scenario
