"""Service-side programming model (the paper's Figure 2 loop).

A *service* is an application code component hosted by a Spectra server,
executing as its own (simulated) process for fault isolation.  The
library mirrors the paper's C API in spirit:

``service_init``   → constructing a :class:`Service` and registering it
``service_getop``  → the framework delivering an :class:`OpContext`
``service_retop``  → returning an :class:`OpResult` from ``perform``

Concrete services subclass :class:`Service` and implement
:meth:`Service.perform` as a simulation process that consumes host
resources (CPU cycles via ``ctx.compute``, file data via ``ctx.access``)
and returns an :class:`OpResult` describing the reply payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional, TYPE_CHECKING

from ..coda import CodaClient
from ..hosts import Host
from .messages import Request

if TYPE_CHECKING:  # pragma: no cover
    pass


@dataclass
class OpResult:
    """What a service hands back to the framework for one request."""

    outdata_bytes: int = 0
    result: Any = None
    rc: int = 0


class OpContext:
    """Execution context handed to :meth:`Service.perform`.

    Wraps the hosting machine's resources with an *owner tag* so that the
    server's monitors can attribute consumption to this operation —
    the simulated analogue of running the service as a separate process
    and reading its ``/proc`` statistics.
    """

    def __init__(self, host: Host, coda: Optional[CodaClient],
                 request: Request, owner: str):
        self.host = host
        self.coda = coda
        self.request = request
        self.owner = owner

    @property
    def params(self) -> Dict[str, Any]:
        return self.request.params

    @property
    def optype(self) -> str:
        return self.request.optype

    @property
    def indata_bytes(self) -> int:
        return self.request.indata_bytes

    def compute(self, cycles: float, fp_fraction: float = 0.0) -> Generator:
        """Process: burn CPU cycles attributed to this operation."""
        return self.host.compute(cycles, owner=self.owner,
                                 fp_fraction=fp_fraction)

    def access(self, path: str) -> Generator:
        """Process: read a Coda file on the hosting machine."""
        if self.coda is None:
            raise RuntimeError(
                f"service on {self.host.name} has no Coda client"
            )
        return self.coda.access(path)


class Service:
    """Base class for application service implementations.

    ``name`` identifies the service in requests.  Subclasses implement
    :meth:`perform`; the hosting Spectra server drives the Figure-2 loop
    (receive → perform → reply) and wraps it with resource accounting.
    """

    name: str = "service"

    def perform(self, ctx: OpContext) -> Generator:
        """Process: execute one request; must return an :class:`OpResult`."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Service {self.name}>"


class NullService(Service):
    """Returns immediately — the paper's §4.4 overhead probe."""

    name = "null"

    def perform(self, ctx: OpContext) -> Generator:
        return OpResult(outdata_bytes=0, result=None)
        yield  # pragma: no cover - generator marker


class FunctionService(Service):
    """Adapter wrapping a plain generator function as a service.

    Handy in tests and examples::

        def double(ctx):
            yield from ctx.compute(1e6)
            return OpResult(result=ctx.params["x"] * 2)

        service = FunctionService("double", double)
    """

    def __init__(self, name: str, fn):
        self.name = name
        self._fn = fn

    def perform(self, ctx: OpContext) -> Generator:
        return self._fn(ctx)
