"""Named chaos profiles for the ``repro chaos`` experiment.

A profile pins everything that makes a chaos run reproducible: the
workloads, how many operations each runs, the seed, and the *mid-op*
faults — faults anchored to a fraction of an operation's fault-free
duration, so the injection provably lands while the operation's remote
RPC is in flight (the scenario the failover machinery exists for).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .schedule import ACTIONS, PAIR_ACTIONS, Target, recovery_action


@dataclass(frozen=True)
class MidOpFault:
    """A fault anchored inside one workload operation.

    The chaos runner injects it at
    ``op_start + fraction × baseline_elapsed(op_index)`` — the baseline
    (fault-free) run calibrates where "mid-operation" is.  When
    ``recover_after_s`` is set, the matching recovery action fires that
    many seconds after the injection.
    """

    op_index: int
    fraction: float
    action: str
    target: Target
    value: Optional[float] = None
    recover_after_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.op_index < 0:
            raise ValueError(f"op_index must be >= 0: {self.op_index}")
        if not 0.0 < self.fraction < 1.0:
            raise ValueError(
                f"fraction must be inside (0, 1): {self.fraction}"
            )
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if isinstance(self.target, tuple) != (self.action in PAIR_ACTIONS):
            raise ValueError(
                f"target {self.target!r} does not fit action {self.action!r}"
            )
        if self.recover_after_s is not None:
            if self.recover_after_s <= 0:
                raise ValueError(
                    f"recover_after_s must be positive: {self.recover_after_s}"
                )
            if recovery_action(self.action) is None:
                raise ValueError(
                    f"action {self.action!r} has no recovery action"
                )


@dataclass(frozen=True)
class ChaosProfile:
    """One reproducible chaos configuration."""

    name: str
    description: str
    seed: int = 7
    #: workloads to run: "speech" (Itsy testbed), "latex" (ThinkPad)
    workloads: Tuple[str, ...] = ("speech",)
    #: unforced operations per workload (after the usual training phase)
    ops_per_workload: int = 3
    #: mid-op faults per workload name
    faults: Dict[str, Tuple[MidOpFault, ...]] = field(default_factory=dict)

    def faults_for(self, workload: str, op_index: int
                   ) -> Tuple[MidOpFault, ...]:
        return tuple(
            f for f in self.faults.get(workload, ())
            if f.op_index == op_index
        )


#: The registry the CLI exposes via ``repro chaos --profile``.
PROFILES: Dict[str, ChaosProfile] = {
    "smoke": ChaosProfile(
        name="smoke",
        description=(
            "CI-sized run: speech workload only; the T20 Spectra server "
            "crashes halfway through the second utterance and restarts "
            "30 s later — the operation must complete via failover to "
            "the local plan."
        ),
        seed=7,
        workloads=("speech",),
        ops_per_workload=3,
        faults={
            "speech": (
                MidOpFault(op_index=1, fraction=0.5,
                           action="crash_server", target="t20",
                           recover_after_s=30.0),
            ),
        },
    ),
    "full": ChaosProfile(
        name="full",
        description=(
            "Both workloads under mixed faults: a mid-op server crash "
            "per testbed, a wireless partition, and a bandwidth "
            "collapse on the serial line."
        ),
        seed=11,
        workloads=("speech", "latex"),
        ops_per_workload=4,
        faults={
            "speech": (
                MidOpFault(op_index=1, fraction=0.5,
                           action="crash_server", target="t20",
                           recover_after_s=45.0),
                MidOpFault(op_index=2, fraction=0.3,
                           action="degrade_bandwidth",
                           target=("itsy", "t20"), value=0.25,
                           recover_after_s=60.0),
            ),
            "latex": (
                MidOpFault(op_index=1, fraction=0.5,
                           action="crash_server", target="server-b",
                           recover_after_s=45.0),
                MidOpFault(op_index=2, fraction=0.4,
                           action="partition",
                           target=("560x", "server-a"),
                           recover_after_s=30.0),
            ),
        },
    ),
}
