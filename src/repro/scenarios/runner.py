"""The scenario runner: spec in, deterministic report out.

Running a scenario has four phases, all on the simulation clock:

1. **Compile** the spec into a live world (:mod:`.compiler`).
2. **Train**: each client runs its ``training_ops`` forced-alternative
   operations (the paper's regimen) so demand models have history, then
   the world settles for ``settle_s`` simulated seconds and every client
   re-polls its servers.
3. **Measure**: the environment timeline is armed (anchored to the end
   of warmup) and every client's seeded arrival process issues
   operations — concurrently across clients, with per-client think
   times — until all generated operations complete.
4. **Report**: latency mean/p50/p95, energy, the fidelity/plan mix,
   failover and retry counters from telemetry, the fault journal, and
   bytes moved over the network, assembled into a JSON-stable
   :class:`ScenarioReport`.

Same spec + same seed ⇒ byte-identical report JSON: the simulator is
deterministic, every random draw comes from a seeded generator derived
from the scenario seed, and the report serializer sorts every key.
"""

from __future__ import annotations

import dataclasses
import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.client import NoFeasibleAlternativeError
from ..predictors.store import PredictorStore
from ..rpc import RetryPolicy, RpcError
from ..sim import AllOf, Timeout
from ..telemetry import Telemetry
from .arrivals import derive_seed, generate_arrivals, think_time
from .compiler import CompiledClient, CompiledScenario, compile_scenario
from .spec import ScenarioSpec

#: Run profiles: ``full`` runs the spec as written; ``smoke`` shrinks it
#: to CI size (short duration, few ops, little training).
PROFILES = ("full", "smoke")

#: Telemetry counters surfaced in every report (0 when never touched).
REPORT_COUNTERS = (
    "spectra.failovers",
    "spectra.ops.aborted",
    "spectra.poll.errors",
    "rpc.retries",
    "rpc.failures",
    "faults.injected",
)

#: Measured-phase retry policy, derived from the scenario seed; armed
#: only when the scenario has an environment timeline to survive.
def _retry_policy(seed: int) -> RetryPolicy:
    return RetryPolicy(
        max_attempts=3, timeout_s=600.0,
        backoff_base_s=0.5, backoff_multiplier=2.0, backoff_max_s=5.0,
        jitter=0.1, seed=derive_seed(seed, "retry"),
    )


def smoke_spec(spec: ScenarioSpec) -> ScenarioSpec:
    """A CI-sized version of *spec*: same world, much less traffic."""
    clients = tuple(
        dataclasses.replace(
            client,
            training_ops=min(client.training_ops, 4),
            arrivals=dataclasses.replace(
                client.arrivals,
                n_ops=min(client.arrivals.n_ops or 2, 2),
            ),
        )
        for client in spec.clients
    )
    return dataclasses.replace(
        spec,
        duration_s=min(spec.duration_s, 30.0),
        settle_s=min(spec.settle_s, 10.0),
        clients=clients,
        timeline=tuple(e for e in spec.timeline if e.at_s < 30.0),
    )


@dataclass
class OpRecord:
    """One measured operation as the runner saw it."""

    client: str
    index: int
    issued_at_s: float
    elapsed_s: float = 0.0
    plan: str = ""
    server: Optional[str] = None
    fidelity: Dict[str, Any] = field(default_factory=dict)
    failed_over: bool = False
    completed: bool = False
    error: str = ""
    #: solver-time per-resource demand prediction (empty for explored /
    #: forced ops) and the measured usage — consumed by the accuracy
    #: convergence experiment; deliberately NOT part of the JSON report.
    predicted: Dict[str, float] = field(default_factory=dict)
    usage: Dict[str, float] = field(default_factory=dict)
    predicted_time_s: Optional[float] = None


@dataclass
class ScenarioReport:
    """Everything one scenario run produced, JSON-stable."""

    scenario: str
    seed: int
    profile: str
    duration_s: float
    sim_time_s: float
    ops: List[OpRecord]
    energy_j: Dict[str, float]
    counters: Dict[str, float]
    fault_journal: List[str]
    bytes_transferred: int
    transfers: int
    #: per-client digest of persisted predictor state; present only when
    #: the run used a predictor store (reports without one stay
    #: byte-identical to pre-store builds)
    predictor_state: Optional[Dict[str, str]] = None

    # -- derived views -------------------------------------------------------------

    @property
    def completed(self) -> bool:
        return all(op.completed for op in self.ops)

    def latencies(self, client: Optional[str] = None) -> List[float]:
        return [op.elapsed_s for op in self.ops
                if op.completed and (client is None or op.client == client)]

    def to_dict(self) -> Dict[str, Any]:
        clients = sorted({op.client for op in self.ops})
        per_client = {name: self._client_section(name) for name in clients}
        data = {
            "scenario": self.scenario,
            "seed": self.seed,
            "profile": self.profile,
            "duration_s": _round(self.duration_s),
            "sim_time_s": _round(self.sim_time_s),
            "clients": per_client,
            "totals": {
                "ops": len(self.ops),
                "completed": sum(1 for op in self.ops if op.completed),
                "failed": sum(1 for op in self.ops if not op.completed),
                "failovers": sum(1 for op in self.ops if op.failed_over),
                "latency": _latency_stats(self.latencies()),
                "energy_j": _round(sum(self.energy_j.values())),
                "bytes_transferred": self.bytes_transferred,
                "transfers": self.transfers,
            },
            "counters": {name: _round(value)
                         for name, value in sorted(self.counters.items())},
            "faults": list(self.fault_journal),
        }
        if self.predictor_state is not None:
            data["predictor_state"] = dict(sorted(
                self.predictor_state.items()
            ))
        return data

    def _client_section(self, name: str) -> Dict[str, Any]:
        ops = [op for op in self.ops if op.client == name]
        mix: Dict[str, int] = {}
        for op in ops:
            if not op.completed:
                continue
            where = f"@{op.server}" if op.server else ""
            fidelity = ",".join(f"{k}={v}"
                                for k, v in sorted(op.fidelity.items()))
            key = op.plan + where + (f" [{fidelity}]" if fidelity else "")
            mix[key] = mix.get(key, 0) + 1
        return {
            "ops": len(ops),
            "completed": sum(1 for op in ops if op.completed),
            "failed": sum(1 for op in ops if not op.completed),
            "failovers": sum(1 for op in ops if op.failed_over),
            "latency": _latency_stats(self.latencies(name)),
            "energy_j": _round(self.energy_j.get(name, 0.0)),
            "mix": dict(sorted(mix.items())),
            "errors": sorted({op.error for op in ops if op.error}),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def _round(value: float, digits: int = 6) -> float:
    """Fixed-precision floats keep report JSON tidy and diff-friendly."""
    return round(float(value), digits)


def _latency_stats(latencies: List[float]) -> Dict[str, float]:
    if not latencies:
        return {"mean_s": 0.0, "p50_s": 0.0, "p95_s": 0.0}
    ordered = sorted(latencies)
    return {
        "mean_s": _round(sum(ordered) / len(ordered)),
        "p50_s": _round(_percentile(ordered, 0.50)),
        "p95_s": _round(_percentile(ordered, 0.95)),
    }


def _percentile(ordered: List[float], q: float) -> float:
    """Linear-interpolation percentile over a pre-sorted list."""
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


# -- execution ---------------------------------------------------------------------


def _train(world: CompiledScenario) -> None:
    """Run every client's forced-alternative training regimen."""
    sim = world.sim
    for compiled in world.clients:
        n = compiled.spec.training_ops
        if n <= 0:
            continue
        alternatives = compiled.app.spec.alternatives(
            list(compiled.spec.servers))
        # Training has its own generator so the measured phase's draws
        # do not shift when a profile rescales training_ops.
        rng = random.Random(derive_seed(world.spec.seed, "training",
                                        compiled.name))
        for i in range(n):
            force = alternatives[i % len(alternatives)]
            sim.run_process(
                compiled.adapter.operation(compiled.app, rng, i, force=force)
            )
    if world.spec.settle_s > 0:
        sim.advance(world.spec.settle_s)
    for compiled in world.clients:
        if compiled.spec.servers:
            sim.run_process(compiled.client.poll_servers())


def _drive(world: CompiledScenario, compiled: CompiledClient,
           t0: float, records: List[OpRecord]):
    """Process: one client's measured phase (arrivals + think times)."""
    sim = world.sim
    spec = world.spec
    arrival_rng = random.Random(derive_seed(spec.seed, "arrivals",
                                            compiled.name))
    think_rng = random.Random(derive_seed(spec.seed, "think",
                                          compiled.name))
    times = generate_arrivals(compiled.spec.arrivals, arrival_rng,
                              spec.duration_s)
    for index, offset in enumerate(times):
        target = t0 + offset
        if sim.now < target:
            yield Timeout(target - sim.now)
        record = OpRecord(client=compiled.name, index=index,
                          issued_at_s=sim.now - t0)
        records.append(record)
        try:
            report = yield from compiled.operation(index)
        except (NoFeasibleAlternativeError, RpcError) as exc:
            record.error = f"{type(exc).__name__}: {exc}"
        else:
            record.elapsed_s = report.elapsed_s
            record.plan = report.alternative.plan.name
            record.server = report.alternative.server
            record.fidelity = dict(report.alternative.fidelity_dict())
            record.failed_over = report.failed_over
            record.completed = True
            record.usage = dict(report.usage)
            if report.prediction is not None:
                record.predicted = dict(report.prediction.demand)
                record.predicted_time_s = report.prediction.total_time_s
        pause = think_time(compiled.spec.think, think_rng)
        if pause > 0:
            yield Timeout(pause)


def run_scenario(
    spec: ScenarioSpec,
    profile: str = "full",
    seed: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
    space_cache: bool = True,
    predictor_store=None,
    save_predictors: bool = False,
) -> ScenarioReport:
    """Run *spec* to completion and return its report.

    ``seed`` overrides the spec's seed; ``profile="smoke"`` shrinks the
    run to CI size first.  A fresh :class:`Telemetry` is created unless
    one is passed in (pass your own to also export the trace).
    ``space_cache=False`` disables every client's search-space cache —
    the reports must come out byte-identical either way (the
    equivalence tests run both); it exists for exactly that check and
    for bisecting a suspected cache bug.

    ``predictor_store`` (a directory path or
    :class:`~repro.predictors.store.PredictorStore`) warm-starts every
    client's demand models from persisted state, scoped per client;
    ``save_predictors=True`` flushes learned state back after the run.
    A store-backed report carries a per-client ``predictor_state``
    digest; store-less reports are byte-identical to earlier builds.
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; "
                         f"choose from {', '.join(PROFILES)}")
    if seed is not None:
        spec = dataclasses.replace(spec, seed=seed)
    if profile == "smoke":
        spec = smoke_spec(spec)
    if telemetry is None:
        telemetry = Telemetry()
    store: Optional[PredictorStore] = None
    if predictor_store is not None:
        store = (predictor_store
                 if isinstance(predictor_store, PredictorStore)
                 else PredictorStore(predictor_store, telemetry=telemetry))
    elif save_predictors:
        raise ValueError("save_predictors=True requires a predictor_store")

    world = compile_scenario(spec, telemetry=telemetry,
                             predictor_store=store)
    sim = world.sim
    if not space_cache:
        for compiled in world.clients:
            compiled.client.space_cache_enabled = False

    _train(world)

    # Arm recovery machinery only when the environment will misbehave:
    # a fault-free scenario keeps the paper's single-attempt transport.
    if len(world.schedule):
        policy = _retry_policy(spec.seed)
        for compiled in world.clients:
            compiled.client.retry_policy = policy

    t0 = sim.now
    world.install_timeline(offset_s=t0)

    records: List[OpRecord] = []
    e0 = {compiled.name: compiled.node.host.energy_consumed_joules()
          for compiled in world.clients}
    processes = [
        sim.spawn(_drive(world, compiled, t0, records),
                  name=f"scenario@{compiled.name}")
        for compiled in world.clients
    ]

    def barrier():
        yield AllOf(processes)

    sim.run_process(barrier())
    # Drain pending recoveries/timers so the fault journal is complete
    # and the world ends healthy.
    sim.run()

    energy = {
        compiled.name: compiled.node.host.energy_consumed_joules()
        - e0[compiled.name]
        for compiled in world.clients
    }
    counters = {name: telemetry.metrics.counter(name).value
                for name in REPORT_COUNTERS}
    records.sort(key=lambda r: (r.client, r.index))
    nbytes = sum(rec.nbytes for rec in world.network.log)
    predictor_state: Optional[Dict[str, str]] = None
    if store is not None:
        # Flush in client order (deterministic), then fingerprint each
        # client's on-disk scope.  Without --save-predictors the digests
        # describe whatever state the run *loaded* — unchanged on disk.
        if save_predictors:
            for compiled in world.clients:
                compiled.client.flush_predictors()
        predictor_state = {
            compiled.name: store.scoped(compiled.name).state_digest()
            for compiled in world.clients
        }
    return ScenarioReport(
        scenario=spec.name,
        seed=spec.seed,
        profile=profile,
        duration_s=spec.duration_s,
        sim_time_s=sim.now,
        ops=records,
        energy_j=energy,
        counters=counters,
        fault_journal=world.injector.journal(),
        bytes_transferred=nbytes,
        transfers=len(world.network.log),
        predictor_state=predictor_state,
    )


def render_report(report: ScenarioReport) -> str:
    """Plain-text summary for the ``repro scenario run`` CLI."""
    data = report.to_dict()
    lines = [
        f"scenario {report.scenario!r} (seed {report.seed}, "
        f"profile {report.profile})",
        "=" * 60,
    ]
    for name, section in data["clients"].items():
        latency = section["latency"]
        lines.append(
            f"\nclient {name}: {section['completed']}/{section['ops']} ops "
            f"completed, {section['failovers']} failovers, "
            f"{section['energy_j']:.2f} J"
        )
        lines.append(
            f"  latency: mean {latency['mean_s']:.2f}s "
            f"p50 {latency['p50_s']:.2f}s p95 {latency['p95_s']:.2f}s"
        )
        for choice, count in section["mix"].items():
            lines.append(f"  {count:3d}x {choice}")
        for error in section["errors"]:
            lines.append(f"  error: {error}")
    totals = data["totals"]
    lines.append(
        f"\ntotals: {totals['completed']}/{totals['ops']} ops, "
        f"{totals['bytes_transferred']} bytes over "
        f"{totals['transfers']} transfers, {totals['energy_j']:.2f} J"
    )
    lines.append("counters: " + ", ".join(
        f"{name}={int(value)}" for name, value in data["counters"].items()
    ))
    if "predictor_state" in data:
        lines.append("predictor state: " + ", ".join(
            f"{client}={digest[:12]}"
            for client, digest in data["predictor_state"].items()
        ))
    if data["faults"]:
        lines.append("faults:")
        for entry in data["faults"]:
            lines.append(f"  {entry}")
    status = "completed" if report.completed else "INCOMPLETE"
    lines.append(f"\nall operations {status}")
    return "\n".join(lines)
