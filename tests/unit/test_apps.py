"""Unit tests for the application models (repro.apps)."""

import pytest

from repro.apps import (
    ENGINE_FIDELITY,
    LARGE_DOCUMENT,
    SMALL_DOCUMENT,
    LatexModel,
    PanglossModel,
    SpeechModel,
    active_engines,
    make_latex_spec,
    make_null_spec,
    make_pangloss_spec,
    make_speech_spec,
    pangloss_fidelity_desirability,
    pangloss_plans,
    speech_fidelity_desirability,
)
from repro.apps.workloads import LatexWorkload, SentenceWorkload, SpeechWorkload


class TestSpeechModel:
    def test_reduced_vocabulary_is_cheaper(self):
        model = SpeechModel()
        assert model.recognize_cycles(2.0, "reduced") < (
            model.recognize_cycles(2.0, "full")
        )

    def test_cycles_scale_with_length(self):
        model = SpeechModel()
        assert model.recognize_cycles(4.0, "full") == pytest.approx(
            2 * model.recognize_cycles(2.0, "full")
        )

    def test_unknown_vocab_rejected(self):
        with pytest.raises(ValueError):
            SpeechModel().recognize_cycles(1.0, "huge")

    def test_lm_paths(self):
        model = SpeechModel()
        assert model.lm_path("full").endswith("lm.full")
        assert model.lm_path("reduced").endswith("lm.reduced")

    def test_fidelity_desirabilities_match_paper(self):
        assert speech_fidelity_desirability({"vocab": "full"}) == 1.0
        assert speech_fidelity_desirability({"vocab": "reduced"}) == 0.5

    def test_spec_shape(self):
        spec = make_speech_spec()
        assert {p.name for p in spec.plans} == {"local", "remote", "hybrid"}
        assert spec.fidelity.size() == 2
        # 3 plans x 2 fidelities with one server, minus nothing = 6
        assert len(spec.alternatives(["t20"])) == 6
        assert spec.input_params == ("utterance_length",)


class TestLatexModel:
    def test_cycles_scale_with_pages_and_complexity(self):
        model = LatexModel()
        base = model.cycles(10)
        assert model.cycles(20) > base
        assert model.cycles(10, complexity=2.0) == pytest.approx(2 * base)

    def test_paper_documents(self):
        assert SMALL_DOCUMENT.pages == 14
        assert LARGE_DOCUMENT.pages == 123
        # The reintegrate scenario's edited file is 70 KB.
        assert SMALL_DOCUMENT.inputs[0][1] == 70 * 1024

    def test_documents_live_in_separate_volumes(self):
        assert SMALL_DOCUMENT.volume != LARGE_DOCUMENT.volume
        small_paths = {p for p, _s in SMALL_DOCUMENT.input_paths()}
        large_paths = {p for p, _s in LARGE_DOCUMENT.input_paths()}
        assert not small_paths & large_paths

    def test_main_input_is_data_object_key(self):
        assert SMALL_DOCUMENT.main_input == "/latex-small/main.tex"

    def test_output_paths(self):
        outputs = dict(SMALL_DOCUMENT.output_paths())
        assert "/latex-small/small.dvi" in outputs
        assert outputs["/latex-small/small.dvi"] == SMALL_DOCUMENT.dvi_bytes

    def test_spec_shape(self):
        spec = make_latex_spec()
        assert {p.name for p in spec.plans} == {"local", "remote"}
        assert spec.fidelity.size() == 1
        assert spec.data_parameterized


class TestPanglossModel:
    def test_component_cycles_linear_in_words(self):
        model = PanglossModel()
        for component in ("ebmt", "glossary", "dictionary", "lm"):
            short = model.cycles(component, 5.0)
            long = model.cycles(component, 10.0)
            assert long > short

    def test_ebmt_dominates_dictionary(self):
        model = PanglossModel()
        assert model.cycles("ebmt", 10.0) > 10 * model.cycles("dictionary", 10.0)

    def test_unknown_component_rejected(self):
        with pytest.raises(AttributeError):
            PanglossModel().cycles("oracle", 1.0)

    def test_fidelity_is_additive(self):
        all_on = {"ebmt": "on", "glossary": "on", "dictionary": "on"}
        assert pangloss_fidelity_desirability(all_on) == pytest.approx(1.0)
        no_gloss = dict(all_on, glossary="off")
        assert pangloss_fidelity_desirability(no_gloss) == pytest.approx(0.7)
        all_off = {e: "off" for e in all_on}
        assert pangloss_fidelity_desirability(all_off) == 0.0

    def test_paper_engine_weights(self):
        assert ENGINE_FIDELITY == {"ebmt": 0.5, "glossary": 0.3,
                                   "dictionary": 0.2}

    def test_active_engines_order(self):
        point = {"ebmt": "on", "glossary": "off", "dictionary": "on"}
        assert active_engines(point) == ["ebmt", "dictionary"]

    def test_plans_place_every_component(self):
        for plan in pangloss_plans():
            for component in ("ebmt", "glossary", "dictionary", "lm"):
                assert plan.role_of(component) in ("local", "remote")

    def test_alternative_count_near_paper_hundred(self):
        spec = make_pangloss_spec()
        count = len(spec.alternatives(["server-a", "server-b"]))
        # The paper reports ~100 combinations of location and fidelity.
        assert 80 <= count <= 110

    def test_local_plan_has_no_remote_components(self):
        local = next(p for p in pangloss_plans() if p.name == "local")
        assert not local.uses_remote
        for component in ("ebmt", "glossary", "dictionary", "lm"):
            assert local.role_of(component) == "local"


class TestNullSpec:
    def test_no_servers_variant_is_local_only(self):
        spec = make_null_spec(remote=False)
        assert len(spec.plans) == 1
        assert not spec.plans[0].uses_remote

    def test_remote_variant(self):
        spec = make_null_spec(remote=True)
        assert {p.name for p in spec.plans} == {"local", "remote"}


class TestWorkloads:
    def test_speech_training_deterministic(self):
        w = SpeechWorkload()
        assert w.training(15) == w.training(15)
        assert len(w.training(15)) == 15
        assert all(length >= w.min_length_s for length in w.training(15))

    def test_speech_probes_differ_from_training(self):
        w = SpeechWorkload()
        assert w.probes(3) != w.training(3)

    def test_sentence_workload_matches_paper_counts(self):
        w = SentenceWorkload()
        assert len(w.training(129)) == 129
        probes = w.probes()
        assert len(probes) == 5
        assert probes == sorted(probes)  # smallest to largest

    def test_latex_workload_alternates(self):
        runs = LatexWorkload().training(6)
        assert runs == ["small", "large"] * 3
