"""Violation reporters: text for humans, JSON and SARIF for machines.

Both render the same :class:`~repro.analysis.core.Violation` list; the
JSON form is stable (sorted keys, schema documented here) so CI and
editor integrations can parse it without guessing:

.. code-block:: json

    {
      "violations": [{"rule": "...", "path": "...", "line": 1,
                      "col": 0, "message": "..."}],
      "counts": {"SPC001": 2},
      "total": 2
    }
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List

from .core import Violation


def render_text(violations: List[Violation], files_checked: int = 0) -> str:
    """One finding per line plus a per-rule summary footer."""
    lines = [violation.render() for violation in violations]
    if violations:
        counts = Counter(violation.rule for violation in violations)
        summary = ", ".join(f"{rule}×{count}"
                            for rule, count in sorted(counts.items()))
        lines.append(f"{len(violations)} violation"
                     f"{'s' if len(violations) != 1 else ''} ({summary})")
    else:
        suffix = f" across {files_checked} files" if files_checked else ""
        lines.append(f"clean{suffix}: no sim-safety violations")
    return "\n".join(lines)


def render_json(violations: List[Violation], files_checked: int = 0) -> str:
    counts: Dict[str, int] = dict(
        Counter(violation.rule for violation in violations)
    )
    payload = {
        "violations": [violation.to_dict() for violation in violations],
        "counts": counts,
        "total": len(violations),
        "files_checked": files_checked,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(violations: List[Violation], files_checked: int = 0) -> str:
    """SARIF 2.1.0, the interchange format code-scanning UIs ingest.

    One run, one driver (``spectra-lint``); the rule table carries every
    registered rule that fired plus the reserved engine codes, so a
    viewer can show name/description without out-of-band docs.  Only
    line/column locations are emitted — the minimal valid subset.
    """
    from .core import INTERNAL_CODE, RULE_REGISTRY, SYNTAX_CODE

    fired = sorted({violation.rule for violation in violations})
    rules = []
    for code in fired:
        rule = RULE_REGISTRY.get(code)
        if rule is not None:
            name, description = rule.name, rule.description
        elif code == INTERNAL_CODE:
            name, description = "internal-error", \
                "the lint engine or a rule crashed"
        elif code == SYNTAX_CODE:
            name, description = "syntax-error", "file does not parse"
        else:
            name, description = code.lower(), ""
        rules.append({
            "id": code,
            "name": name,
            "shortDescription": {"text": description or name},
        })

    results = [{
        "ruleId": violation.rule,
        "level": "error",
        "message": {"text": violation.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": violation.path.replace("\\", "/"),
                },
                "region": {
                    "startLine": violation.line,
                    "startColumn": violation.col + 1,
                },
            },
        }],
    } for violation in violations]

    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "spectra-lint",
                "informationUri":
                    "https://github.com/spectra/repro#sim-safety-lint",
                "rules": rules,
            }},
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


REPORTERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
