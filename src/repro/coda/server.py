"""The Coda file server: authoritative file state plus callbacks.

One :class:`FileServer` instance lives on a (usually dedicated) host and
owns a set of volumes.  Clients fetch file data over the network, cache
it, and register *callbacks* — promises that the server will notify them
before their cached copy goes stale.  When a client reintegrates an
update, the server breaks callbacks held by every other client, which is
how a newly stored Latex input file becomes visible (and other machines'
caches become cold) in the paper's experiments.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..sim import Simulator
from .objects import FileVersion, Volume, volume_of


class FileServer:
    """Authoritative store for a set of volumes.

    The server itself performs negligible computation; its costs are the
    network transfers clients make against it, which the callers (client
    fetch / reintegration processes) account for.
    """

    def __init__(self, sim: Simulator, host_name: str, name: str = "codasrv"):
        # sim is accepted for builder symmetry with the other nodes; the
        # server does no work of its own, so it never reads the clock.
        self.host_name = host_name
        self.name = name
        self._volumes: Dict[str, Volume] = {}
        # callback registry: path -> set of client names holding a callback
        self._callbacks: Dict[str, Set[str]] = {}
        self._clients: Dict[str, "object"] = {}  # name -> CodaClient

    # -- volume admin ------------------------------------------------------------

    def create_volume(self, name: str) -> Volume:
        if name in self._volumes:
            raise ValueError(f"volume {name!r} already exists")
        volume = Volume(name)
        self._volumes[name] = volume
        return volume

    def volume(self, name: str) -> Volume:
        try:
            return self._volumes[name]
        except KeyError:
            raise FileNotFoundError(f"no volume {name!r}") from None

    def create_file(self, path: str, size: int) -> FileVersion:
        """Create a file, creating its volume on demand."""
        vol_name = volume_of(path)
        volume = self._volumes.get(vol_name)
        if volume is None:
            volume = self.create_volume(vol_name)
        return volume.create(path, size)

    def lookup(self, path: str) -> FileVersion:
        return self.volume(volume_of(path)).lookup(path)

    def exists(self, path: str) -> bool:
        vol = self._volumes.get(volume_of(path))
        return vol is not None and path in vol

    # -- client/callback management -----------------------------------------------

    def register_client(self, client: "object") -> None:
        self._clients[client.name] = client  # type: ignore[attr-defined]

    def grant_callback(self, path: str, client_name: str) -> None:
        self._callbacks.setdefault(path, set()).add(client_name)

    def has_callback(self, path: str, client_name: str) -> bool:
        return client_name in self._callbacks.get(path, set())

    def break_callbacks(self, path: str, except_client: Optional[str] = None
                        ) -> List[str]:
        """Notify all other callback holders their copy is stale.

        Returns the list of clients notified.  Callback-break messages are
        tiny; we model them as instantaneous (their bytes are noise next
        to the data transfers Spectra reasons about).
        """
        holders = self._callbacks.get(path, set())
        notified = []
        for client_name in sorted(holders):
            if client_name == except_client:
                continue
            client = self._clients.get(client_name)
            if client is not None:
                client._callback_broken(path)  # type: ignore[attr-defined]
                notified.append(client_name)
        self._callbacks[path] = {except_client} if except_client in holders else set()
        if except_client is not None:
            self._callbacks[path].add(except_client)
        return notified

    # -- update commit ----------------------------------------------------------------

    def commit_store(self, path: str, size: int, client_name: str) -> FileVersion:
        """Apply a reintegrated store and break other clients' callbacks."""
        record = self.volume(volume_of(path)).store(path, size)
        self.break_callbacks(path, except_client=client_name)
        return record
