"""Baseline-policy comparison benchmark.

Quantifies the paper's related-work claims: static placement breaks
when the environment shifts, and RPF — time/battery history only, no
per-resource monitors, no fidelity — cannot anticipate cache state,
bandwidth changes, or quality trade-offs.  Spectra should dominate on
average.
"""


import pytest

from repro.experiments import run_policy_comparison, summarize

from conftest import cached, save_figure


def _comparison():
    return cached("policies", run_policy_comparison)


@pytest.mark.benchmark(group="baselines")
def test_policy_comparison(benchmark, results_dir):
    outcomes = benchmark.pedantic(_comparison, rounds=1, iterations=1)
    means = summarize(outcomes)

    lines = ["Policy comparison (speech scenarios, relative utility "
             "vs oracle)", "=" * 64]
    header = f"{'scenario':12s}" + "".join(
        f"{policy:>14s}" for policy in sorted(means)
    )
    lines.append(header)
    scenarios = sorted({o.scenario for o in outcomes})
    table = {(o.scenario, o.policy): o.relative_utility for o in outcomes}
    for scenario in scenarios:
        lines.append(f"{scenario:12s}" + "".join(
            f"{table[(scenario, policy)]:14.3f}"
            for policy in sorted(means)
        ))
    lines.append(f"{'MEAN':12s}" + "".join(
        f"{means[policy]:14.3f}" for policy in sorted(means)
    ))
    save_figure(results_dir, "policy_comparison", "\n".join(lines))

    # Spectra dominates every baseline on average.
    for policy, mean in means.items():
        if policy != "spectra":
            assert means["spectra"] > mean, (policy, mean)
    assert means["spectra"] >= 0.9

    # Static policies each have a catastrophic scenario.
    worst_local = min(o.relative_utility for o in outcomes
                      if o.policy == "always-local")
    assert worst_local < 0.5
    # Spectra never collapses.
    worst_spectra = min(o.relative_utility for o in outcomes
                        if o.policy == "spectra")
    assert worst_spectra >= 0.85
