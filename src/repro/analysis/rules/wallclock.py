"""SPC001 — no wall-clock reads or real sleeps inside the simulator.

Every timing and energy figure this reproduction reports is an integral
over **simulated** time (``Simulator.now``); a single ``time.time()``
stamp or ``time.sleep()`` pause splices nondeterministic host time into
that ledger and silently corrupts results without failing any test.
The rule bans the standard library's clock surface inside ``src/repro``
— simulated components must take their clock from the sim kernel (or a
bound telemetry clock), never from the host.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import (
    Rule,
    RuleConfig,
    SourceFile,
    Violation,
    register_rule,
    resolve_call_path,
)

#: Fully-resolved call paths that read the host clock or block on it.
BANNED_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.sleep",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


@register_rule
class WallClockRule(Rule):
    code = "SPC001"
    name = "no-wall-clock"
    description = ("wall-clock reads and real sleeps are banned in "
                   "simulated code; use the sim kernel clock")
    default_scope = ("src/repro",)
    # perf/timing.py is the bench harness's clock: measuring host CPU is
    # its purpose, so it is the one sanctioned wall-clock reader.
    default_exclude = ("src/repro/analysis", "src/repro/perf/timing")

    def check(self, source: SourceFile,
              config: RuleConfig) -> Iterator[Violation]:
        banned = frozenset(config.options.get("banned", BANNED_CALLS))
        aliases = source.aliases
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            path = resolve_call_path(node.func, aliases)
            if path is None:
                continue
            # `from datetime import datetime` resolves bare
            # `datetime.now` through the alias map already; also catch
            # the method spelled on an un-aliased import.
            if path in banned:
                yield self.violation(
                    source, node,
                    f"wall-clock call {path}() — all time must come "
                    f"from the sim kernel clock (Simulator.now)",
                )
