"""Deterministic fault injection for chaos-testing the Spectra runtime.

A pervasive-computing environment is defined by change: servers crash,
wireless links partition and heal, bandwidth collapses under interference
(paper §1: resources "may change dramatically during operation").  This
package injects exactly those changes into a running simulation — on a
deterministic, seeded, sim-time schedule — so the runtime's recovery
machinery (RPC retry, mid-operation failover) can be exercised and its
degradation measured reproducibly.

:mod:`~repro.faults.schedule`
    :class:`FaultEvent` / :class:`FaultSchedule` — the declarative
    what/when, plus :func:`random_schedule` for seeded fuzzing.

:mod:`~repro.faults.injector`
    :class:`FaultInjector` — applies events to a live
    :class:`~repro.network.Network` and its Spectra servers, tracking
    enough state to undo each fault (restart, heal, restore).

:mod:`~repro.faults.profiles`
    Named chaos configurations the ``repro chaos`` experiment runs.
"""

from .injector import AppliedFault, FaultInjector
from .profiles import PROFILES, ChaosProfile, MidOpFault
from .schedule import FaultEvent, FaultSchedule, random_schedule

__all__ = [
    "AppliedFault",
    "ChaosProfile",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "MidOpFault",
    "PROFILES",
    "random_schedule",
]
