"""The speech recognition experiment — Figures 3 and 4 (§4.1).

Five scenarios on the Itsy/T20 testbed:

``baseline``   both machines unloaded, wall power, caches warm.
``energy``     client battery-powered with an ambitious lifetime goal
               (energy importance c pinned; see EXPERIMENTS.md).
``network``    serial-link bandwidth halved.
``cpu``        CPU-intensive background job on the client.
``filecache``  Spectra server partitioned away (file servers stay
               reachable) and the 277 KB full-vocabulary language model
               flushed from the client's cache.

For every scenario the harness measures all six alternatives (3 plans ×
2 vocabularies) by forcing them on *fresh* testbeds (so a measurement
cannot perturb the next one's cache or model state), then lets Spectra
choose on its own testbed — the "S"-labelled bar plus the final
"Spectra" bar of Figure 3.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..apps import (
    FULL_LM_BYTES,
    FULL_LM_PATH,
    JanusService,
    REDUCED_LM_BYTES,
    REDUCED_LM_PATH,
    SpeechApplication,
    SpeechWorkload,
)
from ..testbeds import ItsyTestbed
from .runner import AltMeasurement, ScenarioResult, SpectraMeasurement

SCENARIOS = ("baseline", "energy", "network", "cpu", "filecache")

#: Pinned energy importance for the energy scenario.  The paper drives c
#: with goal-directed adaptation toward a 10-hour goal; we pin a
#: mid-range value for determinism (the controller itself is validated
#: in tests/unit/test_goal.py).
ENERGY_SCENARIO_C = 0.15


def _build(scenario: str, solver=None, telemetry=None
           ) -> "tuple[ItsyTestbed, SpeechApplication]":
    """Fresh testbed with files installed, caches warm, and models trained."""
    bed = ItsyTestbed(solver=solver, telemetry=telemetry)
    fs = bed.fileserver
    fs.create_file(FULL_LM_PATH, FULL_LM_BYTES)
    fs.create_file(REDUCED_LM_PATH, REDUCED_LM_BYTES)
    for coda in (bed.itsy.coda, bed.t20.coda):
        coda.warm(FULL_LM_PATH)
        coda.warm(REDUCED_LM_PATH)

    service = JanusService()
    bed.itsy.register_service(service)
    bed.t20.register_service(JanusService())

    bed.poll()
    app = SpeechApplication(bed.client)
    bed.sim.run_process(app.register())

    # Training: 15 utterances, forced round-robin over all alternatives
    # so every (plan × vocabulary) bin gathers samples (§4.1: "We first
    # recognized 15 phrases so that Spectra could learn the
    # application's resource requirements").
    alternatives = app.spec.alternatives(["t20"])
    for i, length in enumerate(SpeechWorkload().training(15)):
        forced = alternatives[i % len(alternatives)]
        bed.sim.run_process(app.recognize(length, force=forced))

    # Let transient load estimates decay and refresh server status
    # before the scenario starts (the paper's phases were minutes
    # apart in wall-clock time).
    bed.sim.advance(30.0)
    bed.poll()

    _apply_scenario(bed, scenario)
    return bed, app


def _apply_scenario(bed: ItsyTestbed, scenario: str) -> None:
    if scenario == "baseline":
        pass
    elif scenario == "energy":
        bed.set_energy_importance(ENERGY_SCENARIO_C)
    elif scenario == "network":
        bed.halve_bandwidth()
        # Post-change traffic lets the passive network monitor observe
        # the new bandwidth (the periodic polls in a live deployment).
        for _ in range(3):
            bed.poll()
    elif scenario == "cpu":
        bed.load_client_cpu(nprocesses=4)
        # Let the load register in the smoothed estimate.
        bed.sim.advance(10.0)
        bed.poll()
    elif scenario == "filecache":
        bed.client.coda.flush(FULL_LM_PATH)
        bed.partition_spectra_server()
        bed.poll()  # the failed poll marks the server unreachable
    else:
        raise ValueError(f"unknown speech scenario {scenario!r}")


def scenario_energy_importance(scenario: str) -> float:
    return ENERGY_SCENARIO_C if scenario == "energy" else 0.0


def run_speech_scenario(scenario: str,
                        probe_length_s: Optional[float] = None,
                        solver=None) -> ScenarioResult:
    """Measure all alternatives + Spectra's choice for one scenario."""
    if probe_length_s is None:
        probe_length_s = SpeechWorkload().probes(1)[0]

    # Which alternatives exist depends on the scenario (no server in the
    # file-cache partition), but we measure all six and mark infeasible.
    reference = _build(scenario, solver=solver)[1].spec.alternatives(["t20"])

    measurements: List[AltMeasurement] = []
    for alternative in reference:
        bed, app = _build(scenario, solver=solver)
        e0 = bed.itsy.host.energy_consumed_joules()
        t0 = bed.sim.now
        try:
            report = bed.sim.run_process(
                app.recognize(probe_length_s, force=alternative)
            )
        except Exception:
            measurements.append(AltMeasurement(
                alternative=alternative, time_s=float("inf"),
                energy_j=float("inf"), feasible=False,
            ))
            continue
        measurements.append(AltMeasurement(
            alternative=alternative,
            time_s=report.elapsed_s,
            energy_j=bed.itsy.host.energy_consumed_joules() - e0,
        ))

    bed, app = _build(scenario, solver=solver)
    e0 = bed.itsy.host.energy_consumed_joules()
    report = bed.sim.run_process(app.recognize(probe_length_s))
    spectra = SpectraMeasurement(
        choice=report.alternative,
        time_s=report.elapsed_s,
        energy_j=bed.itsy.host.energy_consumed_joules() - e0,
        prediction=report.prediction,
    )

    return ScenarioResult(
        scenario=scenario,
        measurements=measurements,
        spectra=spectra,
        energy_importance=scenario_energy_importance(scenario),
        meta={"probe_length_s": probe_length_s},
    )


def run_speech_experiment(scenarios=SCENARIOS, solver=None
                          ) -> Dict[str, ScenarioResult]:
    """The full Figure 3/4 sweep."""
    return {s: run_speech_scenario(s, solver=solver) for s in scenarios}
