"""SPC102/SPC103 — lifecycle pairing as a CFG path property.

SPC003 pairs begins with ends *lexically*: an end anywhere after the
begin, or in any ``finally``, satisfies it.  The shape it structurally
cannot see is the mid-operation failure: a span is opened, the function
``yield``s on a simulated event, the event fails, and the exception
edge leaves the function with the span still open.  In this codebase
that is not a corner case — it is the *normal* failure mode (every
``yield from self.network.transfer(...)`` is a potential abort) — so
these passes re-check the same invariants as reachability over the
:mod:`.cfg` exception-edge CFG:

* **SPC102** — a span begun (``start_span``/``child``/``span``) or a
  monitor recording started (``start_all``) must be closed on every
  path from the begin to any function exit, exception edges included.
* **SPC103** — receiver-paired resource verbs (``acquire``/``release``,
  ``apply``/``revert``) must close on every path.  Pairs whose close
  half lives in another function (cross-function protocols like the
  fault journal's scenario-scoped revert) are skipped, not guessed at.

Both reuse SPC003's escape analysis: an object that leaves the function
(returned, stored on ``self``, passed to a callee) is somebody else's
responsibility.  Findings report the *witness line* — the statement on
the offending path where the un-closed exit happens.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from ..core import (
    ProjectRule,
    RuleConfig,
    SourceFile,
    Violation,
    register_rule,
    resolve_call_path,
)
from ..rules.lifecycle import SPAN_BEGINS, _FunctionScan
from .cfg import EXIT_RAISE, CFG, _own_expressions, build_cfg
from .project import FunctionInfo, ProjectIndex

#: SPC103 verb pairs: open attribute -> accepted close attributes.
RESOURCE_PAIRS: Dict[str, Tuple[str, ...]] = {
    "acquire": ("release",),
    "apply": ("revert",),
}

#: Open verbs that are flagged even with no close call in the function
#: (strict same-scope protocols); others are assumed cross-function.
STRICT_OPENS = frozenset({"acquire"})


def _stmt_id(cfg: CFG, source: SourceFile,
             node: ast.AST) -> Optional[int]:
    """CFG node id of the statement containing *node* (via parent map)."""
    current: Optional[ast.AST] = node
    while current is not None:
        found = cfg.ids.get(current)
        if found is not None:
            return found
        current = source.parents.get(current)
    return None


def _attr_calls(func: ast.AST) -> Iterator[Tuple[str, str, ast.Call]]:
    """(receiver_dotted, attr, call) for method calls in *func*,
    excluding nested function/class bodies (separate scopes)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call) and isinstance(node.func,
                                                     ast.Attribute):
            receiver = _dotted(node.func.value)
            if receiver is not None:
                yield receiver, node.func.attr, node
        stack.extend(ast.iter_child_nodes(node))


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _witness(cfg: CFG, path: List[int]) -> Tuple[str, int]:
    """(exit kind description, witness line) for a leaking path."""
    exit_node = path[-1]
    line = 0
    for node_id in reversed(path[:-1]):
        stmt = cfg.stmts.get(node_id)
        if stmt is not None:
            line = getattr(stmt, "lineno", 0)
            break
    if exit_node == EXIT_RAISE:
        return "an exception escaping", line
    return "a return or fall-through", line


class _PathChecker:
    """Shared machinery: build one CFG per function, answer leak queries."""

    def __init__(self, fn: FunctionInfo, index: ProjectIndex,
                 raising_calls: bool):
        self.fn = fn
        self.source = fn.source
        predicate: Optional[Callable[[ast.Call], bool]] = None
        if raising_calls:
            can_raise = index.can_raise()
            aliases = fn.source.aliases

            def predicate(call: ast.Call) -> bool:
                path = resolve_call_path(call.func, aliases)
                if path is None:
                    return False
                resolved = index.resolve(fn, path)
                return resolved is not None and resolved in can_raise

        self.cfg = build_cfg(fn.node, predicate)

    def leak_path(self, open_call: ast.AST,
                  closes: Callable[[ast.stmt], bool],
                  ) -> Optional[List[int]]:
        """Shortest exit-reaching path from the statement of *open_call*
        that passes no closing statement, or None if every path closes."""
        start = _stmt_id(self.cfg, self.source, open_call)
        if start is None:
            return None

        def stop(node_id: int) -> bool:
            stmt = self.cfg.stmts.get(node_id)
            return stmt is not None and closes(stmt)

        return self.cfg.find_path(start, stop)


def _stmt_contains(stmt: ast.stmt,
                   wanted: Callable[[ast.Call], bool]) -> bool:
    # Only this CFG node's own expressions count: an `if` whose *body*
    # holds the close call must not stop paths through its else branch
    # (the body statements are their own CFG nodes).
    for expr in _own_expressions(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.Lambda):
                continue
            if isinstance(node, ast.Call) and wanted(node):
                return True
    return False


def _closes_span(name: str) -> Callable[[ast.stmt], bool]:
    def check(stmt: ast.stmt) -> bool:
        return _stmt_contains(stmt, lambda call: (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "end"
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id == name))
    return check


def _closes_stop_all(stmt: ast.stmt) -> bool:
    return _stmt_contains(stmt, lambda call: (
        isinstance(call.func, ast.Attribute)
        and call.func.attr == "stop_all"))


def _closes_pair(receiver: str,
                 close_attrs: Tuple[str, ...]) -> Callable[[ast.stmt], bool]:
    def check(stmt: ast.stmt) -> bool:
        return _stmt_contains(stmt, lambda call: (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in close_attrs
            and _dotted(call.func.value) == receiver))
    return check


class _FlowLifecycleBase(ProjectRule):
    """Common iteration: scoped index functions -> per-function check."""

    default_scope = ("src/repro",)
    default_exclude = ("src/repro/analysis",)

    def check_project(self, project, config: RuleConfig,
                      ) -> Iterator[Violation]:
        index: ProjectIndex = project.index
        raising = bool(config.options.get("raising_calls", False))
        checked: Set[str] = set()
        for qname in sorted(index.functions):
            fn = index.functions[qname]
            if not self.in_scope(fn.source, config):
                continue
            # A def indexed under two qnames (first-wins collisions)
            # still only gets checked once per AST node.
            key = f"{fn.source.path}:{getattr(fn.node, 'lineno', 0)}"
            if key in checked:
                continue
            checked.add(key)
            yield from self.check_function(fn, index, raising)

    def check_function(self, fn: FunctionInfo, index: ProjectIndex,
                       raising: bool) -> Iterator[Violation]:
        raise NotImplementedError


@register_rule
class SpanPathRule(_FlowLifecycleBase):
    code = "SPC102"
    name = "span-path-pairing"
    description = ("spans and monitor recordings must close on every "
                   "CFG path, exception edges included")

    def check_function(self, fn: FunctionInfo, index: ProjectIndex,
                       raising: bool) -> Iterator[Violation]:
        scan = _FunctionScan(fn.node)
        span_work = [
            (name, call) for name, _line, call in scan.begins
            if call not in scan.with_calls
            and name not in scan.with_managed
            and name not in scan.escaped
            and scan.end_calls.get(name)     # never-ended: SPC003's finding
        ]
        monitor_work = [
            call for arg_name, call in scan.start_alls
            if scan.stop_alls
            and (arg_name is None or arg_name not in scan.escaped)
        ]
        if not span_work and not monitor_work:
            return
        checker = _PathChecker(fn, index, raising)
        for name, call in span_work:
            path = checker.leak_path(call, _closes_span(name))
            if path is None:
                continue
            kind, line = _witness(checker.cfg, path)
            yield self.violation(
                fn.source, call,
                f"span {name!r} in {fn.qname} leaks: {kind} at line "
                f"{line} exits without {name}.end() — close it in a "
                f"finally or use `with`",
            )
        for call in monitor_work:
            path = checker.leak_path(call, _closes_stop_all)
            if path is None:
                continue
            kind, line = _witness(checker.cfg, path)
            yield self.violation(
                fn.source, call,
                f"monitor recording in {fn.qname} leaks: {kind} at "
                f"line {line} exits without stop_all()",
            )


@register_rule
class ResourcePairPathRule(_FlowLifecycleBase):
    code = "SPC103"
    name = "resource-pair-path"
    description = ("acquire/release-style resource pairs must close on "
                   "every CFG path")

    def check_function(self, fn: FunctionInfo, index: ProjectIndex,
                       raising: bool) -> Iterator[Violation]:
        pairs: Dict[str, Tuple[str, ...]] = dict(RESOURCE_PAIRS)
        scan: Optional[_FunctionScan] = None
        opens: List[Tuple[str, str, ast.Call]] = []
        close_seen: Set[str] = set()
        for receiver, attr, call in _attr_calls(fn.node):
            if attr in pairs:
                opens.append((receiver, attr, call))
            for open_attr, closes in pairs.items():
                if attr in closes:
                    close_seen.add(open_attr)
        if not opens:
            return
        checker: Optional[_PathChecker] = None
        for receiver, attr, call in opens:
            if attr not in close_seen:
                # No close verb anywhere in the function: either a
                # cross-function protocol (skip) or, for strict verbs on
                # a plain local, an outright leak.
                if attr in STRICT_OPENS and "." not in receiver:
                    if scan is None:
                        scan = _FunctionScan(fn.node)
                    if receiver in scan.escaped:
                        continue
                    yield self.violation(
                        fn.source, call,
                        f"{receiver}.{attr}() in {fn.qname} has no "
                        f"matching {'/'.join(pairs[attr])}() in this "
                        f"function",
                    )
                continue
            if checker is None:
                checker = _PathChecker(fn, index, raising)
            path = checker.leak_path(call, _closes_pair(receiver,
                                                        pairs[attr]))
            if path is None:
                continue
            kind, line = _witness(checker.cfg, path)
            yield self.violation(
                fn.source, call,
                f"{receiver}.{attr}() in {fn.qname} leaks: {kind} at "
                f"line {line} exits without "
                f"{receiver}.{'/'.join(pairs[attr])}()",
            )
