"""The canned scenario library.

Four worlds the paper's evaluation gestures at but never builds, each a
pure :class:`~repro.scenarios.spec.ScenarioSpec` the CLI can list,
validate, and run:

``walk-in-office``
    The paper's introduction: a handheld enters a well-conditioned room.
    Connectivity starts throttled (still in the corridor), then opens
    up; the speech client should shift from local execution to
    offloading as the WLAN appears.

``flash-crowd``
    Several mobile clients share one wireless LAN and one compute
    server; a burst of simultaneous Latex work arrives after a quiet
    period — the contention experiment's world under bursty, seeded
    traffic instead of a hand-staggered loop.

``degraded-commute``
    One client rides a connection that decays in steps and then
    recovers (wireless coverage along a commute), with a latency spike
    in the worst stretch.  Spectra should degrade to local execution
    mid-commute and return to offloading afterwards.

``server-churn-day``
    Two compute servers take turns crashing and restarting while a
    client issues steady traffic — the failover machinery's daily
    grind, measurable end to end.

``metro``
    The scale test: hundreds of clients spread over a multi-cell
    wireless topology (one shared medium and one compute server per
    cell, a wired backhaul to the file server).  Exists to prove the
    virtual-time fair-share scheduler and kernel hot path hold up at
    population scale — and, like every canned world, it must run
    byte-deterministically.

Specs are built by zero-argument factories so every caller gets a fresh
object, and registered in :data:`SCENARIOS` for the CLI.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .spec import (
    AppSpec,
    ArrivalSpec,
    ClientSpec,
    HostSpec,
    LinkSpec,
    MediumSpec,
    ScenarioSpec,
    ThinkSpec,
    TimelineEventSpec,
)

#: Bandwidths mirror the prewired testbeds (see ``testbeds.builders``).
WIRELESS_BANDWIDTH_BPS = 250_000.0
WIRELESS_LATENCY_S = 0.002
WIRED_BANDWIDTH_BPS = 500_000.0
WIRED_LATENCY_S = 0.001
OFFICE_WLAN_BANDWIDTH_BPS = 1_400_000.0
OFFICE_WLAN_LATENCY_S = 0.003


def walk_in_office() -> ScenarioSpec:
    hosts = ("itsy", "office-server", "directory")
    return ScenarioSpec(
        name="walk-in-office",
        description=(
            "A handheld walks into a smart office: throttled corridor "
            "connectivity for the first 10 s, then the full WLAN; speech "
            "traffic should migrate from local execution to the "
            "discovered office server."
        ),
        duration_s=120.0,
        seed=17,
        hosts=(
            HostSpec(name="itsy", profile="itsy-v2.2", role="client",
                     battery_powered=True),
            HostSpec(name="office-server", profile="server-b"),
            HostSpec(name="directory", profile="ibm-t20"),
        ),
        media=(
            MediumSpec(name="office-wlan",
                       bandwidth_bps=OFFICE_WLAN_BANDWIDTH_BPS,
                       latency_s=OFFICE_WLAN_LATENCY_S),
        ),
        links=tuple(
            LinkSpec(a=a, b=b, medium="office-wlan")
            for a, b in _full_mesh(list(hosts) + ["fs"])
        ),
        apps=(
            AppSpec(kind="speech", hosts=("itsy", "office-server")),
        ),
        clients=(
            ClientSpec(
                host="itsy", app="speech", servers=("office-server",),
                arrivals=ArrivalSpec(kind="poisson", rate_ops_per_s=0.12,
                                     n_ops=12),
                think=ThinkSpec(kind="constant", mean_s=1.0),
                training_ops=6,
            ),
        ),
        timeline=(
            TimelineEventSpec(at_s=0.0, kind="bandwidth",
                              target=("itsy", "office-server"),
                              value=0.15, until_s=10.0),
            TimelineEventSpec(at_s=0.0, kind="bandwidth",
                              target=("itsy", "fs"),
                              value=0.15, until_s=10.0),
        ),
    )


def flash_crowd() -> ScenarioSpec:
    n_clients = 4
    client_names = [f"client-{i}" for i in range(n_clients)]
    links: List[LinkSpec] = [
        LinkSpec(a="server", b="fs", bandwidth_bps=WIRED_BANDWIDTH_BPS,
                 latency_s=WIRED_LATENCY_S),
    ]
    for name in client_names:
        links.append(LinkSpec(a=name, b="server", medium="wireless"))
        links.append(LinkSpec(a=name, b="fs", medium="wireless"))
    return ScenarioSpec(
        name="flash-crowd",
        description=(
            "Four mobile clients on one wireless LAN hit one compute "
            "server with a burst of Latex work after a quiet spell; "
            "per-client Spectra should spill to local execution as the "
            "server and the medium saturate."
        ),
        duration_s=90.0,
        seed=29,
        hosts=tuple(
            [HostSpec(name="server", profile="server-b")]
            + [HostSpec(name=name, profile="ibm-560x", role="client",
                        battery_powered=True)
               for name in client_names]
        ),
        media=(
            MediumSpec(name="wireless", bandwidth_bps=WIRELESS_BANDWIDTH_BPS,
                       latency_s=WIRELESS_LATENCY_S),
        ),
        links=tuple(links),
        apps=(
            AppSpec(kind="latex",
                    options={"documents": ["small"], "warm_outputs": True}),
        ),
        clients=tuple(
            ClientSpec(
                host=name, app="latex", servers=("server",),
                arrivals=ArrivalSpec(kind="onoff", rate_ops_per_s=0.5,
                                     on_s=15.0, off_s=30.0, n_ops=5),
                training_ops=8,
            )
            for name in client_names
        ),
    )


def degraded_commute() -> ScenarioSpec:
    return ScenarioSpec(
        name="degraded-commute",
        description=(
            "One speech client's wireless link decays in steps (full -> "
            "40% -> 8% with a latency spike) and then recovers — the "
            "walk-to-the-train-and-back bandwidth profile; Spectra "
            "should fall back to local execution in the trough."
        ),
        duration_s=150.0,
        seed=41,
        hosts=(
            HostSpec(name="560x", profile="ibm-560x", role="client",
                     battery_powered=True, battery_driver="acpi"),
            HostSpec(name="server-b", profile="server-b"),
        ),
        media=(
            MediumSpec(name="wireless", bandwidth_bps=WIRELESS_BANDWIDTH_BPS,
                       latency_s=WIRELESS_LATENCY_S),
        ),
        links=(
            LinkSpec(a="560x", b="server-b", medium="wireless"),
            LinkSpec(a="560x", b="fs", medium="wireless"),
            LinkSpec(a="server-b", b="fs",
                     bandwidth_bps=WIRED_BANDWIDTH_BPS,
                     latency_s=WIRED_LATENCY_S),
        ),
        apps=(
            AppSpec(kind="speech",
                    options={"mean_length_s": 1.5, "spread_s": 0.5}),
        ),
        clients=(
            ClientSpec(
                host="560x", app="speech", servers=("server-b",),
                arrivals=ArrivalSpec(kind="fixed", rate_ops_per_s=0.125,
                                     n_ops=14),
                training_ops=6,
            ),
        ),
        timeline=(
            TimelineEventSpec(at_s=30.0, kind="bandwidth",
                              target=("560x", "server-b"),
                              value=0.4, until_s=110.0),
            TimelineEventSpec(at_s=60.0, kind="bandwidth",
                              target=("560x", "fs"),
                              value=0.08, until_s=95.0),
            TimelineEventSpec(at_s=60.0, kind="latency",
                              target=("560x", "server-b"),
                              value=0.25, until_s=95.0),
        ),
    )


def server_churn_day() -> ScenarioSpec:
    return ScenarioSpec(
        name="server-churn-day",
        description=(
            "Two compute servers alternate crash/restart cycles under "
            "steady Poisson Latex traffic; operations must keep "
            "completing via failover to the surviving server or local "
            "execution."
        ),
        duration_s=180.0,
        seed=53,
        hosts=(
            HostSpec(name="560x", profile="ibm-560x", role="client",
                     battery_powered=True, battery_driver="acpi"),
            HostSpec(name="server-a", profile="server-a"),
            HostSpec(name="server-b", profile="server-b"),
        ),
        media=(
            MediumSpec(name="wireless", bandwidth_bps=WIRELESS_BANDWIDTH_BPS,
                       latency_s=WIRELESS_LATENCY_S),
        ),
        links=(
            LinkSpec(a="560x", b="server-a", medium="wireless"),
            LinkSpec(a="560x", b="server-b", medium="wireless"),
            LinkSpec(a="560x", b="fs", medium="wireless"),
            LinkSpec(a="server-a", b="fs",
                     bandwidth_bps=WIRED_BANDWIDTH_BPS,
                     latency_s=WIRED_LATENCY_S),
            LinkSpec(a="server-b", b="fs",
                     bandwidth_bps=WIRED_BANDWIDTH_BPS,
                     latency_s=WIRED_LATENCY_S),
            LinkSpec(a="server-a", b="server-b",
                     bandwidth_bps=WIRED_BANDWIDTH_BPS,
                     latency_s=WIRED_LATENCY_S),
        ),
        apps=(
            AppSpec(kind="latex",
                    options={"documents": ["small"], "warm_outputs": True}),
        ),
        clients=(
            ClientSpec(
                host="560x", app="latex",
                servers=("server-a", "server-b"),
                arrivals=ArrivalSpec(kind="poisson", rate_ops_per_s=0.1,
                                     n_ops=12),
                think=ThinkSpec(kind="exponential", mean_s=2.0),
                training_ops=9,
            ),
        ),
        timeline=(
            TimelineEventSpec(at_s=20.0, kind="server_down",
                              target="server-b", until_s=60.0),
            TimelineEventSpec(at_s=80.0, kind="server_down",
                              target="server-a", until_s=120.0),
            TimelineEventSpec(at_s=140.0, kind="server_down",
                              target="server-b", until_s=165.0),
        ),
    )


#: metro topology: cells × clients-per-cell traffic sources
METRO_CELLS = 8
METRO_CLIENTS_PER_CELL = 25


def metro() -> ScenarioSpec:
    """Population-scale world: hundreds of clients over a cellular grid.

    :data:`METRO_CELLS` cells, each with its own shared wireless medium,
    one compute server, and :data:`METRO_CLIENTS_PER_CELL` clients; every
    cell server reaches the file server over a dedicated wired backhaul,
    while clients share their cell's medium for both compute and Coda
    traffic.  Null-operation traffic keeps the per-op application cost
    at the paper's §4.4 floor, so what this world measures is the
    simulation core itself: hundreds of concurrent jobs on shared media
    and timeshared CPUs — exactly the contention pattern the
    virtual-time fair-share scheduler was built for.
    """
    hosts: List[HostSpec] = []
    media: List[MediumSpec] = []
    links: List[LinkSpec] = []
    clients: List[ClientSpec] = []
    for cell in range(METRO_CELLS):
        server = f"cell{cell}-server"
        medium = f"cell-{cell}"
        hosts.append(HostSpec(name=server, profile="server-b"))
        media.append(MediumSpec(name=medium,
                                bandwidth_bps=WIRELESS_BANDWIDTH_BPS,
                                latency_s=WIRELESS_LATENCY_S))
        links.append(LinkSpec(a=server, b="fs",
                              bandwidth_bps=WIRED_BANDWIDTH_BPS,
                              latency_s=WIRED_LATENCY_S))
        for i in range(METRO_CLIENTS_PER_CELL):
            name = f"m{cell}-{i}"
            hosts.append(HostSpec(name=name, profile="ibm-560x",
                                  role="client"))
            links.append(LinkSpec(a=name, b=server, medium=medium))
            links.append(LinkSpec(a=name, b="fs", medium=medium))
            clients.append(ClientSpec(
                host=name, app="null", servers=(server,),
                arrivals=ArrivalSpec(kind="poisson", rate_ops_per_s=0.05,
                                     n_ops=2),
                training_ops=1,
            ))
    return ScenarioSpec(
        name="metro",
        description=(
            f"{METRO_CELLS * METRO_CLIENTS_PER_CELL} clients across "
            f"{METRO_CELLS} wireless cells (one medium + one compute "
            "server each, wired backhaul to the file server) issuing "
            "null-operation traffic — the population-scale stress test "
            "for the virtual-time scheduler and the kernel hot path."
        ),
        duration_s=60.0,
        seed=101,
        hosts=tuple(hosts),
        media=tuple(media),
        links=tuple(links),
        apps=(AppSpec(kind="null"),),
        clients=tuple(clients),
    )


def _full_mesh(names: List[str]) -> List[tuple]:
    return [(names[i], names[j])
            for i in range(len(names)) for j in range(i + 1, len(names))]


#: Name -> spec factory; the surface ``repro scenario`` exposes.
SCENARIOS: Dict[str, Callable[[], ScenarioSpec]] = {
    "walk-in-office": walk_in_office,
    "flash-crowd": flash_crowd,
    "degraded-commute": degraded_commute,
    "server-churn-day": server_churn_day,
    "metro": metro,
}


def canned_spec(name: str) -> ScenarioSpec:
    """A fresh, validated spec for canned scenario *name*."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; known: {', '.join(sorted(SCENARIOS))}"
        ) from None
    return factory().validate()
