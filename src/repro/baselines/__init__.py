"""Baseline placement policies for comparison benchmarks."""

from .policies import (
    AlwaysLocalPolicy,
    AlwaysRemotePolicy,
    PlacementPolicy,
    RPFPolicy,
    RandomPolicy,
)

__all__ = [
    "AlwaysLocalPolicy",
    "AlwaysRemotePolicy",
    "PlacementPolicy",
    "RPFPolicy",
    "RandomPolicy",
]
