#!/usr/bin/env python
"""Adaptive video playback: continuous fidelity in action.

The paper's own fidelity example — "fidelities for a video player are
lossy compression and frame rate" — with frame rate as a *continuous*
dimension: the solver searches a 5–30 fps grid, while the demand models
regress on frame rate, so costs at never-executed rates are
interpolated rather than guessed.

Watch the player pick an interior frame-rate optimum, then slide down
the quality axis as the world degrades.

Run:  python examples/adaptive_video.py
"""

from repro.apps import (
    SOURCE_PATH,
    VideoApplication,
    VideoService,
    install_video_files,
)
from repro.coda import FileServer
from repro.core import SpectraNode, explain_decision
from repro.hosts import IBM_560X, SERVER_B
from repro.network import Network, SharedMedium
from repro.rpc import RpcTransport
from repro.sim import Simulator


def main() -> None:
    sim = Simulator()
    network = Network(sim)
    transport = RpcTransport(sim, network)
    fileserver = FileServer(sim, "fs")
    network.register_host("fs")
    install_video_files(fileserver)

    pda = SpectraNode(sim, network, transport, fileserver, "pda", IBM_560X)
    server = SpectraNode(sim, network, transport, fileserver, "srv",
                         SERVER_B, with_client=False)
    wlan = SharedMedium(sim, 250_000.0, default_latency_s=0.002)
    for pair in (("pda", "srv"), ("pda", "fs"), ("srv", "fs")):
        network.connect(*pair, wlan.attach())
    pda.coda.warm(SOURCE_PATH)
    server.coda.warm(SOURCE_PATH)
    for node in (pda, server):
        node.register_service(VideoService())

    client = pda.require_client()
    client.add_server("srv")
    sim.run_process(client.poll_servers())
    app = VideoApplication(client)
    sim.run_process(app.register())

    print("Training at the grid edges only (5 and 30 fps)...")
    alternatives = app.spec.alternatives(["srv"])
    for alternative in alternatives:
        if alternative.fidelity_dict()["frame_rate"] in (5.0, 30.0):
            sim.run_process(app.play_segment(force=alternative))
    sim.advance(30.0)
    sim.run_process(client.poll_servers())

    def play(label):
        report = sim.run_process(app.play_segment())
        fidelity = report.alternative.fidelity_dict()
        where = report.alternative.server or "local"
        print(f"  {label:34s} -> {where:6s} {fidelity['frame_rate']:4.0f} fps"
              f" / {fidelity['compression']:4s} compression"
              f"  start delay {report.elapsed_s:.2f}s")
        return report

    print("\nWell-conditioned (idle client, idle server, warm caches):")
    play("segment 1")

    print("\nClient CPU gets busy (3 background processes):")
    pda.host.start_background_load(3)
    sim.advance(15.0)
    sim.run_process(client.poll_servers())
    play("segment 2")
    pda.host.stop_background_load()

    print("\nWLAN congested (bandwidth down to 60 kB/s):")
    sim.advance(30.0)
    wlan.set_bandwidth(60_000.0)
    for _ in range(3):
        sim.run_process(client.poll_servers())
    report = play("segment 3")

    print("\nWhy?  Spectra's own explanation of that last decision:\n")
    # Re-run one more segment keeping the handle for the explanation.
    box = {}

    def op():
        handle = yield from client.begin_fidelity_op(app.spec.name)
        box["handle"] = handle
        fidelity = handle.fidelity
        rpc_params = {"frame_rate": float(fidelity["frame_rate"]),
                      "compression": fidelity["compression"]}
        if handle.plan_name == "remote":
            yield from client.do_remote_op(handle, "video", "transcode",
                                           indata_bytes=256,
                                           params=rpc_params)
        else:
            yield from client.do_local_op(handle, "video", "decode",
                                          params=rpc_params)
        yield from client.end_fidelity_op(handle)

    sim.run_process(op())
    print(explain_decision(box["handle"], top=4))


if __name__ == "__main__":
    main()
