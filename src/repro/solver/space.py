"""The solver's search space and result types.

The space of one placement decision is the cross product

    plans × servers (for remote plans) × fidelity points

structured into *coordinates* so the heuristic solver can walk it one
axis at a time.  Pangloss-Lite's space — 2 placements per engine-ish
choices × servers — reaches 100 alternatives; the speech recognizer's is
6; a null operation's is 1 + #servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.operation import OperationSpec
from ..core.plans import Alternative, ExecutionPlan
from ..core.utility import AlternativePrediction

PredictFn = Callable[[Alternative], AlternativePrediction]
UtilityFn = Callable[[AlternativePrediction], float]


@dataclass
class SolverResult:
    """Outcome of one search."""

    best: Optional[AlternativePrediction]
    utility: float
    #: distinct alternatives predicted+scored (cache misses)
    evaluations: int
    #: total utility-function consultations, including revisits during
    #: the ascent — the quantity decision CPU time is charged on (a real
    #: solver has no memo table; see OverheadModel.choose_per_eval_cycles)
    visits: int = 0
    #: every evaluated alternative with its utility (diagnostics/oracle)
    evaluated: List[Tuple[AlternativePrediction, float]] = field(
        default_factory=list
    )

    @property
    def found(self) -> bool:
        return self.best is not None and self.utility > float("-inf")


class SearchSpace:
    """Coordinate-structured view of an operation's alternatives."""

    def __init__(self, spec: OperationSpec, servers: Sequence[str]):
        self.spec = spec
        self.servers: Tuple[str, ...] = tuple(servers)
        # With no reachable servers, remote plans are not part of the
        # space at all (decoding them would have no server to name).
        self.plans: Tuple[ExecutionPlan, ...] = tuple(
            p for p in spec.plans if not p.uses_remote or self.servers
        )
        self.fidelity_dims = spec.fidelity.dimensions
        self._alternatives = tuple(
            a for a in spec.alternatives(self.servers)
            if any(p.name == a.plan.name for p in self.plans)
        )

    def all_alternatives(self) -> Tuple[Alternative, ...]:
        return self._alternatives

    def size(self) -> int:
        return len(self._alternatives)

    # -- coordinate encoding ----------------------------------------------------------

    def encode(self, alternative: Alternative) -> Tuple[int, ...]:
        """State vector: (plan index, server index, fid indices...)."""
        plan_idx = next(
            i for i, p in enumerate(self.plans) if p.name == alternative.plan.name
        )
        if alternative.server is None:
            server_idx = 0
        else:
            server_idx = self.servers.index(alternative.server)
        fid = alternative.fidelity_dict()
        fid_idx = tuple(
            dim.index_of(fid[dim.name]) for dim in self.fidelity_dims
        )
        return (plan_idx, server_idx) + fid_idx

    def decode(self, state: Tuple[int, ...]) -> Alternative:
        plan = self.plans[state[0]]
        server = self.servers[state[1]] if plan.uses_remote else None
        fidelity = {
            dim.name: dim.values[state[2 + i]]
            for i, dim in enumerate(self.fidelity_dims)
        }
        return Alternative.build(plan, server, fidelity)

    def coordinate_sizes(self) -> Tuple[int, ...]:
        return (
            (len(self.plans), max(len(self.servers), 1))
            + tuple(len(dim.values) for dim in self.fidelity_dims)
        )

    def neighbors(self, state: Tuple[int, ...]) -> List[Tuple[int, ...]]:
        """States differing from *state* in exactly one coordinate."""
        sizes = self.coordinate_sizes()
        out = []
        for axis, size in enumerate(sizes):
            for value in range(size):
                if value == state[axis]:
                    continue
                candidate = list(state)
                candidate[axis] = value
                out.append(tuple(candidate))
        return out
