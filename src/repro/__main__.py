"""``python -m repro`` — the figure-regeneration CLI."""

import sys

from .cli import main

sys.exit(main())
