"""Unit tests for the resource monitors (repro.monitors)."""

import pytest

from repro.coda import CodaClient, FileServer
from repro.hosts import Host, IBM_560X, ITSY_V22, SERVER_A
from repro.monitors import (
    BatteryEstimate,
    CacheStateEstimate,
    FileCacheMonitor,
    LocalCPUMonitor,
    MonitorSet,
    MultimeterMonitor,
    NetworkMonitor,
    OperationRecording,
    RemoteProxyMonitor,
    ResourceSnapshot,
    ServerStatus,
    SmartBatteryMonitor,
)
from repro.network import Link, Network


def blank_snapshot(now=0.0, host="client"):
    return ResourceSnapshot(
        taken_at=now,
        local_host=host,
        local_cpu_rate_cps=0.0,
        local_cache=CacheStateEstimate(cached_files={}, fetch_rate_bps=0.0),
        battery=BatteryEstimate(remaining_joules=None, importance=0.0),
    )


class TestLocalCPUMonitor:
    def test_predicts_idle_rate(self, sim):
        host = Host(sim, "h", SERVER_A)
        monitor = LocalCPUMonitor(host)
        snapshot = blank_snapshot()
        monitor.predict_avail(snapshot)
        assert snapshot.local_cpu_rate_cps == pytest.approx(400e6)

    def test_measures_operation_cycles(self, sim):
        host = Host(sim, "h", SERVER_A)
        monitor = LocalCPUMonitor(host)
        recording = OperationRecording(owner="op1")
        monitor.start_op(recording)

        def work():
            yield from host.cpu.run(1e8, owner="op1")
            yield from host.cpu.run(5e7, owner="someone-else")

        sim.run_process(work())
        monitor.stop_op(recording)
        assert recording.usage["cpu:local"] == pytest.approx(1e8)

    def test_stop_without_start_raises(self, sim):
        host = Host(sim, "h", SERVER_A)
        with pytest.raises(RuntimeError):
            LocalCPUMonitor(host).stop_op(OperationRecording(owner="x"))


class TestBatteryMonitors:
    def test_smart_monitor_reports_capacity_and_importance(self, sim):
        host = Host(sim, "h", ITSY_V22, battery_powered=True)
        host.goal_adaptation.set_importance(0.3)
        monitor = SmartBatteryMonitor(host)
        snapshot = blank_snapshot()
        monitor.predict_avail(snapshot)
        assert snapshot.battery.remaining_joules is not None
        assert snapshot.battery.importance == 0.3

    def test_wall_powered_reports_none(self, sim):
        host = Host(sim, "h", SERVER_A)
        monitor = MultimeterMonitor(host)
        snapshot = blank_snapshot()
        monitor.predict_avail(snapshot)
        assert snapshot.battery.remaining_joules is None

    def test_energy_measurement_brackets_operation(self, sim):
        host = Host(sim, "h", IBM_560X)
        monitor = MultimeterMonitor(host)
        recording = OperationRecording(owner="op")
        sim.run(until=5.0)  # pre-op idle burn must not count
        monitor.start_op(recording)
        sim.run(until=7.0)
        monitor.stop_op(recording)
        assert recording.usage["energy:client"] == pytest.approx(
            IBM_560X.idle_power_watts * 2.0
        )


class TestNetworkMonitor:
    @pytest.fixture
    def wired(self, sim):
        network = Network(sim)
        for name in ("client", "server"):
            network.register_host(name)
        network.connect("client", "server", Link(sim, 10_000.0, 0.05))
        return network

    def test_nominal_fallback_without_traffic(self, sim, wired):
        monitor = NetworkMonitor("client", wired)
        estimate = monitor.estimate_to("server", now=0.0)
        assert not estimate.observed
        assert estimate.bandwidth_bps == pytest.approx(10_000.0, rel=0.01)

    def test_passive_fit_recovers_link_parameters(self, sim, wired):
        monitor = NetworkMonitor("client", wired)

        def traffic():
            yield from wired.transfer("client", "server", 200, kind="rpc")
            yield from wired.transfer("client", "server", 5_000, kind="bulk")
            yield from wired.transfer("server", "client", 2_000, kind="bulk")

        sim.run_process(traffic())
        estimate = monitor.estimate_to("server", now=sim.now)
        assert estimate.observed
        assert estimate.bandwidth_bps == pytest.approx(10_000.0, rel=0.05)
        assert estimate.latency_s == pytest.approx(0.05, rel=0.1)

    def test_fit_tracks_bandwidth_change(self, sim, wired):
        monitor = NetworkMonitor("client", wired)
        link = wired.link_between("client", "server")

        def traffic(sizes):
            for size in sizes:
                yield from wired.transfer("client", "server", size)

        sim.run_process(traffic([200, 4_000]))
        link.set_bandwidth(5_000.0)
        sim.run_process(traffic([200, 4_000, 200, 4_000, 200, 4_000]))
        estimate = monitor.estimate_to("server", now=sim.now)
        assert estimate.bandwidth_bps == pytest.approx(5_000.0, rel=0.25)

    def test_nominal_unreachable_host_predicts_dead_link(self, sim, wired):
        # Regression for the swallowed-except fix in _nominal: a missing
        # route is a *prediction* (NoRouteError -> zero bandwidth,
        # infinite latency), not an error.
        wired.register_host("island")
        monitor = NetworkMonitor("client", wired)
        estimate = monitor.estimate_to("island", now=0.0)
        assert not estimate.observed
        assert estimate.bandwidth_bps == 0.0
        assert estimate.latency_s == float("inf")

    def test_nominal_propagates_wiring_bugs(self, sim, wired):
        # ...but any failure other than NoRouteError is a bug in the
        # caller's wiring and must not masquerade as a dead link.
        class BrokenNetwork:
            log = wired.log

            def link_between(self, a, b):
                raise RuntimeError("mis-wired network object")

        monitor = NetworkMonitor("client", BrokenNetwork())
        with pytest.raises(RuntimeError, match="mis-wired"):
            monitor.estimate_to("server", now=0.0)

    def test_demand_copied_from_stats(self, sim, wired):
        monitor = NetworkMonitor("client", wired)
        recording = OperationRecording(owner="op")
        recording.stats.rpcs = 3
        recording.stats.bytes_sent = 1000
        recording.stats.bytes_received = 500
        monitor.start_op(recording)
        monitor.stop_op(recording)
        assert recording.usage["net:bytes"] == 1500.0
        assert recording.usage["net:rpcs"] == 3.0


class TestRemoteProxyMonitor:
    def test_status_updates_fill_snapshot(self):
        proxy = RemoteProxyMonitor("server-b")
        status = ServerStatus(
            host_name="server-b", cpu_rate_cps=933e6,
            cached_files={"/v/a": 100}, fetch_rate_bps=5e5, taken_at=10.0,
        )
        proxy.update_preds(status)
        snapshot = blank_snapshot(now=12.0)
        proxy.predict_avail(snapshot, "server-b")
        estimate = snapshot.servers["server-b"]
        assert estimate.reachable
        assert estimate.cpu_rate_cps == 933e6
        assert estimate.cache.cached_files == {"/v/a": 100}
        assert estimate.staleness_s == pytest.approx(2.0)

    def test_wrong_server_status_rejected(self):
        proxy = RemoteProxyMonitor("server-b")
        with pytest.raises(ValueError):
            proxy.update_preds(ServerStatus(host_name="other", cpu_rate_cps=1))

    def test_unpolled_server_is_unreachable(self):
        proxy = RemoteProxyMonitor("server-b")
        snapshot = blank_snapshot()
        proxy.predict_avail(snapshot, "server-b")
        assert not snapshot.servers["server-b"].reachable

    def test_mark_unreachable_clears_status(self):
        proxy = RemoteProxyMonitor("s")
        proxy.update_preds(ServerStatus(host_name="s", cpu_rate_cps=1.0))
        proxy.mark_unreachable()
        assert proxy.status is None

    def test_add_usage_filters_by_server_tag(self):
        proxy = RemoteProxyMonitor("server-b")
        recording = OperationRecording(owner="op")
        proxy.add_usage(recording, {"cpu:remote": 100.0, "_server": "server-b"})
        proxy.add_usage(recording, {"cpu:remote": 999.0, "_server": "other"})
        assert recording.usage["cpu:remote"] == 100.0

    def test_ignores_other_servers_in_snapshot(self):
        proxy = RemoteProxyMonitor("server-b")
        snapshot = blank_snapshot()
        proxy.predict_avail(snapshot, "server-a")
        assert "server-a" not in snapshot.servers


class TestFileCacheMonitor:
    def test_cache_state_and_accesses(self, sim):
        network = Network(sim)
        for name in ("client", "fs"):
            network.register_host(name)
        network.connect("client", "fs", Link(sim, 1e6, 0.001))
        server = FileServer(sim, "fs")
        server.create_file("/v/a", 100)
        coda = CodaClient(sim, "client", server, network)
        coda.warm("/v/a")
        monitor = FileCacheMonitor(coda)

        snapshot = blank_snapshot()
        monitor.predict_avail(snapshot)
        assert snapshot.local_cache.cached_files == {"/v/a": 100}
        assert snapshot.local_cache.fetch_rate_bps > 0

        recording = OperationRecording(owner="op")
        monitor.start_op(recording)

        def op():
            yield from coda.access("/v/a")

        sim.run_process(op())
        monitor.stop_op(recording)
        assert recording.file_accesses == {"/v/a": 100}


class TestMonitorSet:
    def test_proxies_run_before_decorators(self, sim):
        """The proxy must create the server entry before the network
        monitor decorates it (regression test for ordering)."""
        order = []

        class Creator(RemoteProxyMonitor):
            def predict_avail(self, snapshot, server_name=None):
                order.append("creator")
                super().predict_avail(snapshot, server_name)

        class Decorator(LocalCPUMonitor):
            predict_priority = 0

            def predict_avail(self, snapshot, server_name=None):
                if server_name is not None:
                    order.append("decorator")

        host = Host(sim, "h", SERVER_A)
        creator = Creator("srv")
        monitors = MonitorSet([Decorator(host), creator])
        monitors.predict_all(blank_snapshot(), ["srv"])
        assert order.index("creator") < order.index("decorator")

    def test_add_remove_get(self, sim):
        host = Host(sim, "h", SERVER_A)
        monitors = MonitorSet()
        cpu_monitor = LocalCPUMonitor(host)
        monitors.add(cpu_monitor)
        assert monitors.get("cpu") is cpu_monitor
        assert len(monitors) == 1
        assert monitors.remove("cpu")
        assert not monitors.remove("cpu")
        with pytest.raises(KeyError):
            monitors.get("cpu")


class TestMachineWideBandwidthFallback:
    def test_traffic_to_one_peer_informs_another(self, sim):
        """First-hop-is-bottleneck: with no traffic history for server B,
        the monitor falls back to the machine-wide fit (traffic to A),
        not the nominal link rate."""
        network = Network(sim)
        for name in ("client", "a", "b"):
            network.register_host(name)
        # Both peers sit behind the same 10 kB/s first hop, but B's link
        # nominally claims 80 kB/s (a stale advertised rate).
        network.connect("client", "a", Link(sim, 10_000.0, 0.01))
        network.connect("client", "b", Link(sim, 80_000.0, 0.01))
        monitor = NetworkMonitor("client", network)

        def traffic():
            yield from network.transfer("client", "a", 200, kind="rpc")
            yield from network.transfer("client", "a", 5_000, kind="bulk")
            yield from network.transfer("a", "client", 2_000, kind="bulk")

        sim.run_process(traffic())
        estimate = monitor.estimate_to("b", now=sim.now)
        assert estimate.observed
        # The machine-wide fit (~10 kB/s) wins over B's nominal 80 kB/s.
        assert estimate.bandwidth_bps == pytest.approx(10_000.0, rel=0.1)

    def test_pair_specific_fit_still_preferred(self, sim):
        network = Network(sim)
        for name in ("client", "a", "b"):
            network.register_host(name)
        network.connect("client", "a", Link(sim, 10_000.0, 0.01))
        network.connect("client", "b", Link(sim, 40_000.0, 0.01))
        monitor = NetworkMonitor("client", network)

        def traffic():
            for peer, sizes in (("a", (200, 5_000)), ("b", (200, 5_000))):
                for size in sizes:
                    yield from network.transfer("client", peer, size)

        sim.run_process(traffic())
        # B has its own history: the estimate reflects B's faster link.
        estimate = monitor.estimate_to("b", now=sim.now)
        assert estimate.bandwidth_bps == pytest.approx(40_000.0, rel=0.15)
