"""Compile a validated :class:`ScenarioSpec` into a live testbed.

The compiler is the bridge between the declarative world description
and the existing substrates: it instantiates the simulator, network,
RPC transport and Coda file server, wires every host up as a
:class:`~repro.core.SpectraNode`, installs application services and
warms caches through per-app adapters, connects clients to their
servers, and arms a :class:`~repro.faults.FaultInjector` with the
compiled environment timeline.  Everything it builds is exposed on the
returned :class:`CompiledScenario`, so callers that need more than the
canned runner (examples driving discovery, experiments with bespoke
measurement loops) can take the compiled world and drive it by hand.

Construction order is deliberate and stable — hosts in spec order, then
media, then links, then client wiring — because the simulation is
deterministic only relative to a fixed construction sequence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Mapping, Optional

from ..apps import (
    FULL_LM_BYTES,
    FULL_LM_PATH,
    LARGE_DOCUMENT,
    REDUCED_LM_BYTES,
    REDUCED_LM_PATH,
    SMALL_DOCUMENT,
    JanusService,
    LatexApplication,
    LatexService,
    NullApplication,
    SpeechApplication,
    install_document,
    warm_document,
)
from ..coda import FileServer
from ..core import SpectraNode
from ..faults import FaultInjector, FaultSchedule
from ..hosts import get_profile
from ..network import Link, Network, SharedMedium
from ..predictors.store import PredictorStore
from ..rpc import NullService, RpcTransport
from ..sim import Simulator
from ..telemetry import Telemetry
from .arrivals import derive_seed
from .spec import ClientSpec, ScenarioSpec
from .timeline import compile_timeline

#: Latex documents addressable from a scenario's app options.
LATEX_DOCUMENTS = {"small": SMALL_DOCUMENT, "large": LARGE_DOCUMENT}


class AppAdapter:
    """How one application kind maps onto a compiled world.

    An adapter knows how to install the app's files on the Coda file
    server, which RPC service to register on hosts that run the app,
    how to warm a machine's cache, and how to drive operations through
    a per-client application object.  ``options`` is the free-form
    mapping from :class:`~repro.scenarios.spec.AppSpec`.
    """

    kind: str = ""

    def __init__(self, options: Optional[Mapping] = None):
        self.options: Dict[str, Any] = dict(options or {})

    def install(self, fileserver: FileServer) -> None:
        """Create the app's files on the Coda file server."""

    def service(self):
        """A fresh server-side Service instance for one host."""
        raise NotImplementedError

    def warm(self, coda) -> None:
        """Populate one machine's Coda cache with the app's files."""

    def driver(self, client):
        """The per-client application object (has .spec and .register())."""
        raise NotImplementedError

    def operation(self, app, rng: random.Random, index: int,
                  force=None) -> Generator:
        """Process: one operation; returns the OperationReport."""
        raise NotImplementedError


class SpeechAdapter(AppAdapter):
    """Janus speech recognition; options: ``mean_length_s``,
    ``spread_s``, ``min_length_s`` (utterance-length distribution)."""

    kind = "speech"

    def install(self, fileserver) -> None:
        for path, size in ((FULL_LM_PATH, FULL_LM_BYTES),
                           (REDUCED_LM_PATH, REDUCED_LM_BYTES)):
            if not fileserver.exists(path):
                fileserver.create_file(path, size)

    def service(self):
        return JanusService()

    def warm(self, coda) -> None:
        coda.warm(FULL_LM_PATH)
        coda.warm(REDUCED_LM_PATH)

    def driver(self, client):
        return SpeechApplication(client)

    def operation(self, app, rng, index, force=None) -> Generator:
        mean = float(self.options.get("mean_length_s", 2.0))
        spread = float(self.options.get("spread_s", 0.8))
        floor = float(self.options.get("min_length_s", 0.5))
        length = max(floor, rng.uniform(mean - spread, mean + spread))
        return app.recognize(length, force=force)


class LatexAdapter(AppAdapter):
    """Latex typesetting; options: ``documents`` (names from
    ``LATEX_DOCUMENTS``, default both) and ``warm_outputs``."""

    kind = "latex"

    def __init__(self, options: Optional[Mapping] = None):
        super().__init__(options)
        names = self.options.get("documents", sorted(LATEX_DOCUMENTS))
        unknown = [n for n in names if n not in LATEX_DOCUMENTS]
        if unknown:
            raise ValueError(
                f"unknown latex document(s) {unknown!r} "
                f"(known: {', '.join(sorted(LATEX_DOCUMENTS))})"
            )
        self.documents = {name: LATEX_DOCUMENTS[name] for name in names}

    def install(self, fileserver) -> None:
        for document in self.documents.values():
            install_document(fileserver, document)

    def service(self):
        return LatexService(self.documents)

    def warm(self, coda) -> None:
        outputs = bool(self.options.get("warm_outputs", True))
        for document in self.documents.values():
            warm_document(coda, document, outputs=outputs)

    def driver(self, client):
        return LatexApplication(client, self.documents)

    def operation(self, app, rng, index, force=None) -> Generator:
        names = sorted(self.documents)
        return app.format(names[index % len(names)], force=force)


class NullAdapter(AppAdapter):
    """The §4.4 null operation — pure Spectra overhead traffic."""

    kind = "null"

    def service(self):
        return NullService()

    def driver(self, client):
        return NullApplication(client)

    def operation(self, app, rng, index, force=None) -> Generator:
        return app.invoke(force=force)


#: App kind -> adapter class; the spec validator checks against this.
ADAPTERS = {
    "speech": SpeechAdapter,
    "latex": LatexAdapter,
    "null": NullAdapter,
}


@dataclass
class CompiledClient:
    """One traffic source of a compiled world."""

    spec: ClientSpec
    node: SpectraNode
    adapter: AppAdapter
    app: Any  # the per-client application driver
    #: seeded generator for this client's workload draws
    rng: random.Random = field(repr=False,
                               default_factory=lambda: random.Random(0))

    @property
    def name(self) -> str:
        return self.spec.host

    @property
    def client(self):
        return self.node.require_client()

    def operation(self, index: int, force=None) -> Generator:
        return self.adapter.operation(self.app, self.rng, index, force=force)


@dataclass
class CompiledScenario:
    """A live, runnable world built from a spec."""

    spec: ScenarioSpec
    sim: Simulator
    network: Network
    transport: RpcTransport
    fileserver: FileServer
    nodes: Dict[str, SpectraNode]
    media: Dict[str, SharedMedium]
    clients: List[CompiledClient]
    injector: FaultInjector
    schedule: FaultSchedule
    telemetry: Optional[Telemetry]

    def install_timeline(self, offset_s: float = 0.0) -> FaultSchedule:
        """Arm the compiled timeline, shifted to start at *offset_s*."""
        shifted = (self.schedule.shifted(offset_s) if offset_s > 0
                   else self.schedule)
        self.injector.install(shifted)
        return shifted


def compile_scenario(
    spec: ScenarioSpec,
    telemetry: Optional[Telemetry] = None,
    connect_clients: bool = True,
    register_apps: bool = True,
    predictor_store: Optional[PredictorStore] = None,
) -> CompiledScenario:
    """Build the world *spec* describes and return every live piece.

    ``connect_clients=False`` leaves every client's server database
    empty and skips status polls (for discovery-driven worlds);
    ``register_apps=False`` skips client-side ``register_fidelity``
    (for callers that register with an imported usage log).
    ``predictor_store`` attaches a per-client scope of the given store
    to every Spectra client *before* registration runs, so operations
    warm-start from any state a previous run persisted.
    """
    spec.validate()

    sim = Simulator(telemetry=telemetry) if telemetry else Simulator()
    network = Network(sim)
    transport = RpcTransport(sim, network, telemetry=telemetry)
    fileserver = FileServer(sim, spec.fileserver)
    network.register_host(spec.fileserver)

    adapters = {app.kind: ADAPTERS[app.kind](app.options)
                for app in spec.apps}
    for app in spec.apps:
        adapters[app.kind].install(fileserver)

    nodes: Dict[str, SpectraNode] = {}
    for host in spec.hosts:
        node = SpectraNode(
            sim, network, transport, fileserver,
            host.name, get_profile(host.profile),
            battery_powered=host.battery_powered,
            battery_driver=host.battery_driver,
            with_client=(host.role == "client"),
            telemetry=telemetry,
        )
        nodes[host.name] = node
        for app in spec.apps:
            if app.runs_on(host.name):
                adapter = adapters[app.kind]
                node.register_service(adapter.service())
                adapter.warm(node.coda)

    media = {
        medium.name: SharedMedium(sim, medium.bandwidth_bps,
                                  default_latency_s=medium.latency_s,
                                  name=medium.name)
        for medium in spec.media
    }
    for link in spec.links:
        if link.medium is not None:
            iface = media[link.medium].attach(name=f"{link.a}-{link.b}")
        else:
            iface = Link(sim, link.bandwidth_bps, link.latency_s,
                         name=f"{link.a}-{link.b}")
        network.connect(link.a, link.b, iface)

    clients: List[CompiledClient] = []
    for client_spec in spec.clients:
        node = nodes[client_spec.host]
        client = node.require_client()
        if predictor_store is not None:
            # Each client learns (and persists) its own history: scoping
            # by host name keeps co-named operations on different
            # clients from clobbering each other's documents, and keeps
            # save order irrelevant to the on-disk result.
            client.predictor_store = predictor_store.scoped(client_spec.host)
        if connect_clients:
            for server in client_spec.servers:
                client.add_server(server)
        adapter = adapters[client_spec.app]
        app = adapter.driver(client)
        rng = random.Random(derive_seed(spec.seed, "workload",
                                        client_spec.host))
        clients.append(CompiledClient(spec=client_spec, node=node,
                                      adapter=adapter, app=app, rng=rng))

    if connect_clients:
        for compiled in clients:
            sim.run_process(compiled.client.poll_servers())
            if register_apps:
                sim.run_process(compiled.app.register())

    servers = {host.name: nodes[host.name].server
               for host in spec.hosts if host.role == "server"}
    injector = FaultInjector(sim, network, servers, telemetry=telemetry)
    schedule = compile_timeline(spec)

    return CompiledScenario(
        spec=spec, sim=sim, network=network, transport=transport,
        fileserver=fileserver, nodes=nodes, media=media, clients=clients,
        injector=injector, schedule=schedule, telemetry=telemetry,
    )
