"""The parallel-execution extension experiment (paper §4.3 future work).

"We plan to explore execution plans that support parallel execution.
For Pangloss-Lite, this would yield considerable benefit: the three
engines could be executed in parallel on different servers."

This experiment builds the configuration where that claim bites — two
*comparable* compute servers — and compares the best sequential plan
against the parallel-engines plan for the full-fidelity translation of
each probe sentence.  With the paper's original unequal servers
(933 vs 400 MHz) the parallel plan helps little, because an even split
is gated by the slow machine; the experiment reports both testbeds so
the crossover is visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..apps import (
    PanglossApplication,
    PanglossService,
    SentenceWorkload,
    install_pangloss_files,
    warm_pangloss_files,
)
from ..hosts import SERVER_B
from ..testbeds import ThinkpadTestbed


@dataclass
class ParallelCell:
    """Sequential-vs-parallel timings for one sentence length."""

    words: int
    sequential_s: float      # best sequential plan at full fidelity
    parallel_s: float        # parallel-engines plan at full fidelity
    spectra_choice: str      # what Spectra picks with both available
    spectra_s: float

    @property
    def speedup(self) -> float:
        return self.sequential_s / self.parallel_s


class TwinServerTestbed(ThinkpadTestbed):
    """The ThinkPad testbed with server A upgraded to match server B."""

    def __init__(self, solver=None):
        super().__init__(solver=solver)
        # Swap A's processor for a B-class one: rebuild its fair-share
        # capacity in place (the simulated equivalent of a hardware
        # upgrade between experiments).
        self.server_a.host.cpu._resource.set_capacity(
            SERVER_B.cycles_per_second
        )


def _build(twin: bool, solver=None):
    bed = TwinServerTestbed(solver=solver) if twin else ThinkpadTestbed(
        solver=solver
    )
    install_pangloss_files(bed.fileserver)
    for node in (bed.thinkpad, bed.server_a, bed.server_b):
        warm_pangloss_files(node.coda)
        node.register_service(PanglossService())
    bed.poll()
    app = PanglossApplication(bed.client, parallel=True)
    bed.sim.run_process(app.register())
    alternatives = app.spec.alternatives(["server-a", "server-b"])
    for i, words in enumerate(SentenceWorkload().training(129)):
        bed.sim.run_process(
            app.translate(words, force=alternatives[i % len(alternatives)])
        )
    bed.sim.advance(30.0)
    bed.poll()
    return bed, app


def run_parallel_cell(words: int, twin: bool = True,
                      solver=None) -> ParallelCell:
    """Compare sequential vs parallel full-fidelity execution."""
    bed, app = _build(twin, solver=solver)
    full = {"ebmt": "on", "glossary": "on", "dictionary": "on"}
    alternatives = [
        a for a in app.spec.alternatives(["server-a", "server-b"])
        if a.fidelity_dict() == full
    ]
    sequential = [a for a in alternatives
                  if a.plan.parallelism == 1 and a.plan.uses_remote]
    parallel = [a for a in alternatives if a.plan.parallelism > 1]

    seq_best = min(
        bed.sim.run_process(app.translate(words, force=a)).elapsed_s
        for a in sequential
    )
    par_best = min(
        bed.sim.run_process(app.translate(words, force=a)).elapsed_s
        for a in parallel
    )
    report = bed.sim.run_process(app.translate(words))
    return ParallelCell(
        words=words,
        sequential_s=seq_best,
        parallel_s=par_best,
        spectra_choice=report.alternative.describe(),
        spectra_s=report.elapsed_s,
    )


def run_parallel_experiment(sentences=(8, 18, 27), twin: bool = True,
                            solver=None) -> List[ParallelCell]:
    return [run_parallel_cell(words, twin=twin, solver=solver)
            for words in sentences]


def render_parallel_table(twin_cells: List[ParallelCell],
                          unequal_cells: List[ParallelCell]) -> str:
    title = ("Extension: parallel execution plans (Pangloss-Lite, "
             "full fidelity)")
    lines = [title, "=" * len(title)]
    for label, cells in (("twin 933 MHz servers", twin_cells),
                         ("original 933/400 MHz servers", unequal_cells)):
        lines.append(f"\n[{label}]")
        lines.append(f"{'words':>6s} {'sequential':>11s} {'parallel':>9s} "
                     f"{'speedup':>8s}  Spectra's pick")
        for cell in cells:
            lines.append(
                f"{cell.words:6d} {cell.sequential_s:10.2f}s "
                f"{cell.parallel_s:8.2f}s {cell.speedup:7.2f}x  "
                f"{cell.spectra_choice} ({cell.spectra_s:.2f}s)"
            )
    return "\n".join(lines)
