"""Exhaustive search: the oracle solver.

Evaluates every alternative and returns the true argmax.  Used (a) as
the reference the heuristic solver is tested against, and (b) by the
experiment harness to rank Spectra's choice among all alternatives
(Figures 8 and 9 rank against exactly this enumeration).
"""

from __future__ import annotations


from .space import PredictFn, SearchSpace, SolverResult, UtilityFn


class ExhaustiveSolver:
    """Evaluate everything; pick the best.  O(|space|) utility calls."""

    name = "exhaustive"

    def __init__(self, collect_evaluated: bool = False):
        #: populate SolverResult.evaluated (explain/oracle diagnostics)
        self.collect_evaluated = collect_evaluated

    def solve(self, space: SearchSpace, predict: PredictFn,
              utility: UtilityFn) -> SolverResult:
        best = None
        best_utility = float("-inf")
        evaluated = []
        count = 0
        for alternative in space.all_alternatives():
            prediction = predict(alternative)
            value = utility(prediction)
            count += 1
            if self.collect_evaluated:
                evaluated.append((prediction, value))
            if value > best_utility:
                best = prediction
                best_utility = value
        return SolverResult(
            best=best,
            utility=best_utility,
            evaluations=count,
            visits=count,
            evaluated=evaluated,
        )
