"""The ``spectra-bench/1`` document schema and its validator.

``repro bench`` emits one JSON document per suite —
``BENCH_decision.json`` (microbenchmarks) and ``BENCH_scenarios.json``
(scenario throughput) — committed at the repository root so the numbers
are diffable PR-over-PR.  Timings drift with the host; the *shape* must
not.  CI therefore validates structure only: a missing key, a wrong
type, or an unknown schema tag fails the build, a slow machine never
does.

Validation is hand-rolled (no jsonschema dependency) and reports every
problem path-qualified, e.g.::

    benchmarks.decision.speedup: expected number, got str
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

SCHEMA = "spectra-bench/1"

#: keys every best-of-N measurement dict must carry
MEASUREMENT_KEYS = ("number", "repeats", "best_s", "mean_s", "worst_s")

#: microbenchmark names BENCH_decision must contain
DECISION_BENCHMARKS = ("snapshot", "predict", "solve", "decision",
                       "kernel_events")

#: per-scenario keys BENCH_scenarios must carry
SCENARIO_KEYS = ("profile", "repeats", "wall_s", "ops", "completed",
                 "ops_per_s", "sim_time_s", "sim_s_per_wall_s")

#: benchmark names BENCH_kernel must contain
KERNEL_BENCHMARKS = ("event_throughput", "timer_churn", "contended_medium")


class BenchSchemaError(ValueError):
    """A bench document does not conform to ``spectra-bench/1``."""


def _fail(problems: List[str]) -> None:
    if problems:
        raise BenchSchemaError("\n".join(problems))


def _check_number(doc: Dict[str, Any], path: str, key: str,
                  problems: List[str],
                  nonnegative: bool = True) -> None:
    value = doc.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        problems.append(f"{path}.{key}: expected number, "
                        f"got {type(value).__name__}")
        return
    if value != value or value in (float("inf"), float("-inf")):
        problems.append(f"{path}.{key}: must be finite, got {value!r}")
    elif nonnegative and value < 0:
        problems.append(f"{path}.{key}: must be >= 0, got {value!r}")


def _check_measurement(doc: Any, path: str, problems: List[str]) -> None:
    if not isinstance(doc, dict):
        problems.append(f"{path}: expected measurement object, "
                        f"got {type(doc).__name__}")
        return
    for key in MEASUREMENT_KEYS:
        if key not in doc:
            problems.append(f"{path}.{key}: missing")
        else:
            _check_number(doc, path, key, problems)


def _check_header(doc: Dict[str, Any], suite: str,
                  problems: List[str]) -> None:
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema: expected {SCHEMA!r}, "
                        f"got {doc.get('schema')!r}")
    if doc.get("suite") != suite:
        problems.append(f"suite: expected {suite!r}, got {doc.get('suite')!r}")
    if not isinstance(doc.get("quick"), bool):
        problems.append("quick: expected bool, "
                        f"got {type(doc.get('quick')).__name__}")
    if not isinstance(doc.get("python"), str):
        problems.append("python: expected str, "
                        f"got {type(doc.get('python')).__name__}")


def validate_decision_doc(doc: Any) -> None:
    """Raise :class:`BenchSchemaError` unless *doc* is a valid
    ``BENCH_decision`` document."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        raise BenchSchemaError(f"document: expected object, "
                               f"got {type(doc).__name__}")
    _check_header(doc, "decision", problems)
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, dict):
        problems.append("benchmarks: expected object, "
                        f"got {type(benchmarks).__name__}")
        _fail(problems)
        return
    for name in DECISION_BENCHMARKS:
        if name not in benchmarks:
            problems.append(f"benchmarks.{name}: missing")
    for name, entry in benchmarks.items():
        path = f"benchmarks.{name}"
        if name == "decision":
            if not isinstance(entry, dict):
                problems.append(f"{path}: expected object, "
                                f"got {type(entry).__name__}")
                continue
            _check_measurement(entry.get("baseline"),
                               f"{path}.baseline", problems)
            _check_measurement(entry.get("optimized"),
                               f"{path}.optimized", problems)
            _check_number(entry, path, "speedup", problems)
            if not isinstance(entry.get("same_choice"), bool):
                problems.append(f"{path}.same_choice: expected bool, "
                                f"got {type(entry.get('same_choice')).__name__}")
            elif not entry["same_choice"]:
                # Not a schema nicety: the cache must be semantically
                # invisible, so a divergent pick is a correctness bug.
                problems.append(f"{path}.same_choice: baseline and "
                                "optimized picked different alternatives")
        else:
            _check_measurement(entry, path, problems)
    _fail(problems)


def validate_scenarios_doc(doc: Any) -> None:
    """Raise :class:`BenchSchemaError` unless *doc* is a valid
    ``BENCH_scenarios`` document."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        raise BenchSchemaError(f"document: expected object, "
                               f"got {type(doc).__name__}")
    _check_header(doc, "scenarios", problems)
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, dict):
        problems.append("benchmarks: expected object, "
                        f"got {type(benchmarks).__name__}")
        _fail(problems)
        return
    if not benchmarks:
        problems.append("benchmarks: empty — at least one scenario required")
    for name, entry in benchmarks.items():
        path = f"benchmarks.{name}"
        if not isinstance(entry, dict):
            problems.append(f"{path}: expected object, "
                            f"got {type(entry).__name__}")
            continue
        for key in SCENARIO_KEYS:
            if key not in entry:
                problems.append(f"{path}.{key}: missing")
            elif key == "profile":
                if not isinstance(entry[key], str):
                    problems.append(f"{path}.{key}: expected str, "
                                    f"got {type(entry[key]).__name__}")
            else:
                _check_number(entry, path, key, problems)
    _fail(problems)


def validate_kernel_doc(doc: Any) -> None:
    """Raise :class:`BenchSchemaError` unless *doc* is a valid
    ``BENCH_kernel`` document."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        raise BenchSchemaError(f"document: expected object, "
                               f"got {type(doc).__name__}")
    _check_header(doc, "kernel", problems)
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, dict):
        problems.append("benchmarks: expected object, "
                        f"got {type(benchmarks).__name__}")
        _fail(problems)
        return
    for name in KERNEL_BENCHMARKS:
        if name not in benchmarks:
            problems.append(f"benchmarks.{name}: missing")
    for name, entry in benchmarks.items():
        path = f"benchmarks.{name}"
        if name == "contended_medium":
            if not isinstance(entry, dict):
                problems.append(f"{path}: expected object, "
                                f"got {type(entry).__name__}")
                continue
            _check_measurement(entry.get("baseline"),
                               f"{path}.baseline", problems)
            _check_measurement(entry.get("optimized"),
                               f"{path}.optimized", problems)
            _check_number(entry, path, "speedup", problems)
            _check_number(entry, path, "jobs", problems)
            _check_number(entry, path, "events_per_s", problems)
            if not isinstance(entry.get("same_results"), bool):
                problems.append(
                    f"{path}.same_results: expected bool, "
                    f"got {type(entry.get('same_results')).__name__}")
            elif not entry["same_results"]:
                # Not a schema nicety: the virtual-time scheduler must be
                # behaviorally invisible, so a divergent completion
                # sequence is a correctness bug, not a slow host.
                problems.append(f"{path}.same_results: legacy and "
                                "virtual-time completion sequences differ")
        else:
            _check_measurement(entry, path, problems)
            if isinstance(entry, dict):
                _check_number(entry, path, "events_per_s", problems)
    _fail(problems)


VALIDATORS = {
    "decision": validate_decision_doc,
    "scenarios": validate_scenarios_doc,
    "kernel": validate_kernel_doc,
}


def validate_bench_doc(doc: Any) -> str:
    """Validate any bench document; returns its suite name."""
    if not isinstance(doc, dict):
        raise BenchSchemaError(f"document: expected object, "
                               f"got {type(doc).__name__}")
    suite = doc.get("suite")
    validator = VALIDATORS.get(suite)
    if validator is None:
        raise BenchSchemaError(
            f"suite: unknown {suite!r}; known: "
            f"{', '.join(sorted(VALIDATORS))}"
        )
    validator(doc)
    return suite


def validate_bench_file(path: str) -> str:
    """Validate a bench JSON file on disk; returns its suite name."""
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        raise BenchSchemaError(f"{path}: cannot read/parse: {exc}")
    return validate_bench_doc(doc)
