"""Integration tests for cross-cutting system behaviour:

* data consistency through Coda under remote execution,
* self-tuning convergence (predictions improve with executions),
* goal-directed adaptation driving decisions end-to-end,
* the heuristic solver's quality against the exhaustive oracle,
* baseline-policy comparison.
"""

import pytest

from repro.apps import SMALL_DOCUMENT, SpeechWorkload
from repro.experiments.baselines import run_policy_comparison, summarize
from repro.experiments.latex import _build as build_latex
from repro.experiments.speech import _build as build_speech
from repro.solver import ExhaustiveSolver


class TestDataConsistency:
    def test_remote_execution_sees_client_modifications(self, sim=None):
        """Spectra must reintegrate the edited input before running
        remotely: the service on the server reads the *new* version."""
        bed, app = build_latex("reintegrate")
        coda = bed.thinkpad.coda
        main = SMALL_DOCUMENT.main_input
        assert coda.has_pending_store(main)
        version_before = bed.fileserver.lookup(main).version

        # Force remote execution; begin_fidelity_op must reintegrate.
        remote_b = next(
            a for a in app.spec.alternatives(["server-a", "server-b"])
            if a.server == "server-b"
        )
        bed.sim.run_process(app.format("small", force=remote_b))
        # The buffered store committed: version bumped, CML drained.
        assert bed.fileserver.lookup(main).version > version_before
        assert not coda.has_pending_store(main)

    def test_local_execution_leaves_cml_untouched(self):
        bed, app = build_latex("reintegrate")
        local = app.spec.alternatives([])[0]
        pending_before = bed.thinkpad.coda.cml.total_pending_bytes()
        bed.sim.run_process(app.format("small", force=local))
        # Local run adds its own dirty outputs; nothing was flushed.
        assert (bed.thinkpad.coda.cml.total_pending_bytes()
                >= pending_before)


class TestSelfTuning:
    def test_prediction_error_shrinks_with_training(self):
        """'the more an operation is executed, the more accurately its
        resource usage is predicted.'"""
        bed, app = build_speech("baseline")
        client = bed.client
        probe = SpeechWorkload().probes(1)[0]

        def predicted_vs_actual():
            box = {}

            def op():
                handle = yield from client.begin_fidelity_op(
                    app.spec.name,
                    params={"utterance_length": probe},
                )
                box["handle"] = handle
                vocab = handle.fidelity["vocab"]
                rpc_params = {"utterance_length": probe, "vocab": vocab}
                if handle.plan_name == "local":
                    yield from client.do_local_op(handle, "janus", "full",
                                                  params=rpc_params)
                elif handle.plan_name == "remote":
                    yield from client.do_remote_op(
                        handle, "janus", "full",
                        indata_bytes=int(16_000 * probe), params=rpc_params)
                else:
                    response = yield from client.do_local_op(
                        handle, "janus", "frontend", params=rpc_params)
                    yield from client.do_remote_op(
                        handle, "janus", "recognize",
                        indata_bytes=response.outdata_bytes,
                        params=rpc_params)
                return (yield from client.end_fidelity_op(handle))

            report = bed.sim.run_process(op())
            prediction = box["handle"].prediction
            if prediction is None:
                return None
            return abs(prediction.total_time_s - report.elapsed_s) / (
                report.elapsed_s
            )

        errors = [e for e in (predicted_vs_actual() for _ in range(6))
                  if e is not None]
        assert errors, "solver never produced predictions"
        # Late predictions at least as good as the first one.
        assert errors[-1] <= errors[0] + 0.05
        # And genuinely accurate in absolute terms.
        assert errors[-1] < 0.15


class TestGoalDirectedAdaptationEndToEnd:
    def test_rising_importance_flips_speech_to_remote(self):
        """Drive c with the real controller instead of pinning: heavy
        drain against an ambitious goal pushes decisions to the
        energy-frugal remote plan."""
        bed, app = build_speech("baseline")
        probe = SpeechWorkload().probes(1)[0]
        report = bed.sim.run_process(app.recognize(probe))
        assert report.alternative.plan.name == "hybrid"  # c == 0 baseline

        # An "ambitious battery lifetime goal": the Itsy battery cannot
        # possibly last 10 hours under load, so c climbs.
        bed.itsy.host.set_lifetime_goal(10 * 3600.0)
        bed.itsy.host.start_background_load(1)  # drain hard
        bed.sim.advance(120.0)
        bed.itsy.host.stop_background_load()
        assert bed.client.host.energy_importance > 0.05
        bed.sim.advance(30.0)
        bed.poll()
        report = bed.sim.run_process(app.recognize(probe))
        # Energy matters now: hybrid (which burns client CPU) loses.
        assert report.alternative.plan.name == "remote"


class TestSolverQualityEndToEnd:
    def test_heuristic_matches_exhaustive_choice_on_speech(self):
        heuristic = build_speech("baseline")
        exhaustive = build_speech("baseline", solver=ExhaustiveSolver())
        probe = SpeechWorkload().probes(1)[0]
        r1 = heuristic[0].sim.run_process(heuristic[1].recognize(probe))
        r2 = exhaustive[0].sim.run_process(exhaustive[1].recognize(probe))
        assert r1.alternative == r2.alternative


class TestPolicyComparison:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return run_policy_comparison(scenarios=("baseline", "filecache"))

    def test_spectra_beats_static_policies_on_average(self, outcomes):
        means = summarize(outcomes)
        assert means["spectra"] > means["always-local"]
        assert means["spectra"] > means["always-remote"]
        assert means["spectra"] >= means["rpf"] - 0.05

    def test_static_policies_break_somewhere(self, outcomes):
        """Each static policy has at least one scenario where it loses
        badly — the motivation for dynamic placement."""
        worst = {}
        for outcome in outcomes:
            worst[outcome.policy] = min(
                worst.get(outcome.policy, 1.0), outcome.relative_utility
            )
        assert worst["always-local"] < 0.7
        assert worst["spectra"] > 0.85
