"""Fault schedules: what breaks, when, and for how long.

A schedule is pure data — no clocks, no randomness at apply time — so the
same schedule applied to the same simulation produces byte-identical
traces.  :func:`random_schedule` generates schedules from an explicit
seed for fuzz-style chaos runs; the generator is consulted only at
construction, never during the run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

#: target is a host name for server faults, an (a, b) host pair for link
#: faults.
Target = Union[str, Tuple[str, str]]

#: fault actions and the action that undoes each (None = self-contained)
ACTIONS = {
    "crash_server": "restart_server",
    "restart_server": None,
    "partition": "heal",
    "heal": None,
    "degrade_bandwidth": "restore_bandwidth",
    "restore_bandwidth": None,
    "spike_latency": "restore_latency",
    "restore_latency": None,
}

#: actions that take an (a, b) pair target rather than a host name
PAIR_ACTIONS = frozenset({
    "partition", "heal",
    "degrade_bandwidth", "restore_bandwidth",
    "spike_latency", "restore_latency",
})


def recovery_action(action: str) -> Optional[str]:
    """The action that undoes *action*, or None if it needs no undo."""
    try:
        return ACTIONS[action]
    except KeyError:
        raise ValueError(f"unknown fault action {action!r}") from None


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: *action* on *target* at sim-time *at_s*.

    ``value`` parameterizes the action: the bandwidth fraction kept for
    ``degrade_bandwidth`` (0.0 = jammed), the added seconds for
    ``spike_latency``; unused otherwise.
    """

    at_s: float
    action: str
    target: Target
    value: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError(f"fault time must be non-negative: {self.at_s}")
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        is_pair = isinstance(self.target, tuple)
        if is_pair != (self.action in PAIR_ACTIONS):
            kind = "an (a, b) host pair" if self.action in PAIR_ACTIONS \
                else "a host name"
            raise ValueError(
                f"action {self.action!r} takes {kind}, got {self.target!r}"
            )
        if self.action == "degrade_bandwidth":
            if self.value is None or not 0.0 <= self.value < 1.0:
                raise ValueError(
                    f"degrade_bandwidth needs a kept-fraction in [0, 1): "
                    f"{self.value!r}"
                )
        if self.action == "spike_latency":
            if self.value is None or self.value <= 0.0:
                raise ValueError(
                    f"spike_latency needs positive added seconds: "
                    f"{self.value!r}"
                )

    def describe(self) -> str:
        target = ("<->".join(self.target) if isinstance(self.target, tuple)
                  else self.target)
        suffix = f" value={self.value}" if self.value is not None else ""
        return f"t={self.at_s:.3f}s {self.action} {target}{suffix}"


class FaultSchedule:
    """An ordered, immutable sequence of :class:`FaultEvent`."""

    def __init__(self, events: Sequence[FaultEvent]):
        self._events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.at_s, e.action, str(e.target)))
        )

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        return self._events

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def duration_s(self) -> float:
        return self._events[-1].at_s if self._events else 0.0

    def shifted(self, offset_s: float) -> "FaultSchedule":
        """The same schedule, every event *offset_s* later."""
        return FaultSchedule([
            FaultEvent(e.at_s + offset_s, e.action, e.target, e.value)
            for e in self._events
        ])

    def describe(self) -> str:
        return "\n".join(e.describe() for e in self._events)


def random_schedule(
    seed: int,
    duration_s: float,
    server_hosts: Sequence[str] = (),
    link_pairs: Sequence[Tuple[str, str]] = (),
    n_faults: int = 4,
    min_outage_s: float = 1.0,
    max_outage_s: float = 30.0,
) -> FaultSchedule:
    """A seeded schedule of paired inject/recover faults.

    Every injected fault recovers before ``duration_s`` (crashed servers
    restart, partitions heal, degraded links restore), so a run under a
    random schedule always ends in a healthy environment.  The same seed
    and arguments produce the same schedule on every run.
    """
    if duration_s <= 0:
        raise ValueError(f"duration must be positive: {duration_s}")
    if max_outage_s < min_outage_s:
        raise ValueError("max_outage_s < min_outage_s")
    rng = random.Random(seed)
    menu: List[Tuple[str, Target, Optional[float]]] = []
    for host in server_hosts:
        menu.append(("crash_server", host, None))
    for pair in link_pairs:
        menu.append(("partition", tuple(pair), None))
        menu.append(("degrade_bandwidth", tuple(pair), None))
        menu.append(("spike_latency", tuple(pair), None))
    if not menu:
        raise ValueError("no servers or link pairs to inject faults into")

    events: List[FaultEvent] = []
    for _ in range(n_faults):
        action, target, _ = menu[rng.randrange(len(menu))]
        start = rng.uniform(0.0, max(duration_s - min_outage_s, 0.0))
        outage = min(rng.uniform(min_outage_s, max_outage_s),
                     duration_s - start)
        value: Optional[float] = None
        if action == "degrade_bandwidth":
            value = rng.uniform(0.0, 0.5)
        elif action == "spike_latency":
            value = rng.uniform(0.05, 1.0)
        events.append(FaultEvent(start, action, target, value))
        undo = recovery_action(action)
        if undo is not None:
            events.append(FaultEvent(start + outage, undo, target))
    return FaultSchedule(events)
