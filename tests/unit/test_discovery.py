"""Unit tests for the service-discovery directory (repro.discovery)."""

import pytest

from repro.discovery import ADVERTISE_TTL_S, DirectoryService
from repro.hosts import Host, SERVER_B
from repro.rpc import OpContext, Request


def advertise(sim, directory, host, server_name, ttl=None):
    params = {"server": server_name}
    if ttl is not None:
        params["ttl"] = ttl
    ctx = OpContext(host, None,
                    Request("slp-directory", "advertise", opid=1,
                            params=params),
                    owner="test")
    return sim.run_process(directory.perform(ctx))


def query(sim, directory, host):
    ctx = OpContext(host, None,
                    Request("slp-directory", "query", opid=2), owner="test")
    return sim.run_process(directory.perform(ctx))


@pytest.fixture
def host(sim):
    return Host(sim, "dir-host", SERVER_B)


class TestDirectoryService:
    def test_advertise_then_query(self, sim, host):
        directory = DirectoryService(sim)
        advertise(sim, directory, host, "srv-1")
        result = query(sim, directory, host)
        assert result.result == ("srv-1",)

    def test_lease_expiry(self, sim, host):
        directory = DirectoryService(sim)
        advertise(sim, directory, host, "srv-1", ttl=10.0)
        sim.run(until=sim.now + 5.0)
        assert directory.live_servers() == ["srv-1"]
        sim.run(until=sim.now + 6.0)
        assert directory.live_servers() == []

    def test_readvertise_refreshes_lease(self, sim, host):
        directory = DirectoryService(sim)
        advertise(sim, directory, host, "srv-1", ttl=10.0)
        sim.run(until=sim.now + 8.0)
        advertise(sim, directory, host, "srv-1", ttl=10.0)
        sim.run(until=sim.now + 8.0)  # 16 s after first ad
        assert directory.live_servers() == ["srv-1"]

    def test_default_ttl(self, sim, host):
        directory = DirectoryService(sim)
        advertise(sim, directory, host, "srv-1")
        sim.run(until=sim.now + ADVERTISE_TTL_S - 1.0)
        assert directory.live_servers() == ["srv-1"]
        sim.run(until=sim.now + 2.0)
        assert directory.live_servers() == []

    def test_query_result_sorted(self, sim, host):
        directory = DirectoryService(sim)
        for name in ("zeta", "alpha", "mid"):
            advertise(sim, directory, host, name)
        assert query(sim, directory, host).result == ("alpha", "mid", "zeta")

    def test_query_size_scales_with_entries(self, sim, host):
        directory = DirectoryService(sim)
        empty = query(sim, directory, host)
        for i in range(5):
            advertise(sim, directory, host, f"srv-{i}")
        full = query(sim, directory, host)
        assert full.outdata_bytes > empty.outdata_bytes

    def test_unknown_optype_rejected(self, sim, host):
        directory = DirectoryService(sim)
        ctx = OpContext(host, None,
                        Request("slp-directory", "subscribe", opid=3),
                        owner="test")
        with pytest.raises(ValueError):
            sim.run_process(directory.perform(ctx))
