"""Integration tests for the telemetry subsystem against a live system:

* begin_fidelity_op phase spans reproduce ``OperationHandle.timings``
  exactly (the Figure-10 view-over-spans refactor),
* an uninstrumented run (telemetry=None) is bit-identical to an
  instrumented one — tracing observes, never perturbs,
* abort_fidelity_op stops the monitors it started (the recording-leak
  fix),
* JSONL export feeds the ``repro trace`` CLI end to end.
"""

import json

from repro.cli import main as cli_main
from repro.coda import FileServer
from repro.core import OperationSpec, SpectraNode, local_plan, remote_plan
from repro.hosts import HostProfile
from repro.network import Link, Network
from repro.odyssey import FidelitySpec
from repro.rpc import OpContext, OpResult, RpcTransport, Service
from repro.sim import Simulator
from repro.telemetry import Telemetry, collect_operations, split_records


class CruncherService(Service):
    name = "cruncher"

    def perform(self, ctx: OpContext):
        size = float(ctx.params["size"])
        yield from ctx.compute(2e8 * size)
        return OpResult(outdata_bytes=int(100_000 * size))


def build(telemetry=None):
    """A two-host world mirroring the quickstart, deterministically."""
    sim = Simulator(telemetry=telemetry)
    network = Network(sim)
    transport = RpcTransport(sim, network, telemetry=telemetry)
    fileserver = FileServer(sim, "fs")
    network.register_host("fs")

    handheld_hw = HostProfile(
        name="Handheld", cycles_per_second=150e6,
        idle_power_watts=0.3, cpu_active_power_watts=1.2,
        net_tx_power_watts=0.4, net_rx_power_watts=0.3,
        battery_capacity_joules=8_000.0,
    )
    server_hw = HostProfile(name="Desktop", cycles_per_second=1.5e9)

    handheld = SpectraNode(sim, network, transport, fileserver,
                           "handheld", handheld_hw, battery_powered=True,
                           telemetry=telemetry)
    desktop = SpectraNode(sim, network, transport, fileserver,
                          "desktop", server_hw, with_client=False,
                          telemetry=telemetry)
    network.connect("handheld", "desktop", Link(sim, 1.4e6, 0.003))
    network.connect("handheld", "fs", Link(sim, 1.4e6, 0.003))
    network.connect("desktop", "fs", Link(sim, 12.5e6, 0.001))
    for node in (handheld, desktop):
        node.register_service(CruncherService())

    client = handheld.require_client()
    client.add_server("desktop")
    sim.run_process(client.poll_servers())

    spec = OperationSpec(
        name="crunch",
        plans=(local_plan("local"), remote_plan("remote")),
        fidelity=FidelitySpec.fixed(),
        input_params=("size",),
    )
    sim.run_process(client.register_fidelity(spec))
    return sim, client, handheld


def run_workload(sim, client, sizes=(2.0, 3.0, 2.5, 4.0)):
    """Run the operations; return (handles, report fingerprints)."""
    handles, fingerprints = [], []
    for size in sizes:
        def op():
            handle = yield from client.begin_fidelity_op(
                "crunch", params={"size": size},
            )
            handles.append(handle)
            if handle.plan_name == "remote":
                yield from client.do_remote_op(
                    handle, "cruncher", "run",
                    indata_bytes=int(300_000 * size),
                    params={"size": size},
                )
            else:
                yield from client.do_local_op(
                    handle, "cruncher", "run", params={"size": size},
                )
            return (yield from client.end_fidelity_op(handle))

        report = sim.run_process(op())
        fingerprints.append((
            report.alternative.describe(), report.elapsed_s,
            report.energy_joules, dict(handles[-1].timings),
        ))
    return handles, fingerprints


class TestPhaseSpansMatchTimings:
    def test_begin_span_phases_equal_handle_timings(self):
        telemetry = Telemetry()
        sim, client, _ = build(telemetry)
        handles, _ = run_workload(sim, client)

        begins = {
            span.attrs["opid"]: span
            for span in telemetry.tracer.finished
            if span.name == "begin_fidelity_op"
        }
        assert len(begins) == len(handles)
        for handle in handles:
            span = begins[handle.opid]
            # The timings dict IS the span view: exact float equality.
            assert span.phase_timings() == handle.timings
            assert set(handle.timings) == {
                "file_cache_prediction", "snapshot", "choosing",
                "consistency", "total",
            }
            assert handle.timings["total"] == span.duration

    def test_exported_records_carry_the_same_phases(self, tmp_path):
        telemetry = Telemetry()
        sim, client, _ = build(telemetry)
        handles, _ = run_workload(sim, client)
        path = tmp_path / "run.jsonl"
        telemetry.export_jsonl(path)

        records = [json.loads(line) for line in path.read_text().splitlines()]
        spans, _metrics = split_records(records)
        ops = {op.opid: op for op in collect_operations(spans)}
        assert len(ops) == len(handles)
        for handle in handles:
            phases = ops[handle.opid].phases
            for name, duration in phases.items():
                assert duration == handle.timings[name]


class TestNullTelemetryBitIdentical:
    def test_run_results_identical_with_and_without_telemetry(self):
        sim_off, client_off, node_off = build(telemetry=None)
        _, plain = run_workload(sim_off, client_off)

        telemetry = Telemetry()
        sim_on, client_on, node_on = build(telemetry)
        _, traced = run_workload(sim_on, client_on)

        # Bit-identical: same choices, same floats, same timings dicts.
        assert plain == traced
        assert sim_off.now == sim_on.now
        assert (node_off.host.battery.remaining_joules
                == node_on.host.battery.remaining_joules)

    def test_null_path_leaves_no_records(self):
        sim, client, _ = build(telemetry=None)
        run_workload(sim, client)
        # Nothing accumulated anywhere: the run was uninstrumented.
        from repro.telemetry import NULL_TELEMETRY
        assert NULL_TELEMETRY.records() == []


class TestAbortStopsMonitors:
    def test_abort_finishes_recording_and_stops_monitors(self):
        telemetry = Telemetry()
        sim, client, _ = build(telemetry)

        def begin_only():
            return (yield from client.begin_fidelity_op(
                "crunch", params={"size": 2.0},
            ))

        handle = sim.run_process(begin_only())
        assert handle.recording.finished_at is None
        client.abort_fidelity_op(handle)
        # The leak fix: the recording is closed and every monitor ran
        # stop_op, so measured usage landed despite the abort.
        assert handle.recording.finished_at == sim.now
        assert handle.recording.usage
        assert handle.recording not in client._active
        # Idempotent, and visible in the trace.
        client.abort_fidelity_op(handle)
        aborts = [span for span in telemetry.tracer.finished
                  if span.name == "abort_fidelity_op"]
        assert len(aborts) == 1
        assert telemetry.metrics.counter("spectra.ops.aborted").value == 1.0

    def test_operation_after_abort_not_marked_concurrent(self):
        sim, client, _ = build(telemetry=None)

        def begin_only():
            return (yield from client.begin_fidelity_op(
                "crunch", params={"size": 2.0},
            ))

        aborted = sim.run_process(begin_only())
        client.abort_fidelity_op(aborted)
        handles, _ = run_workload(sim, client, sizes=(2.0,))
        assert not handles[0].recording.concurrent


class TestTraceCli:
    def test_trace_subcommand_renders_report(self, tmp_path, capsys):
        telemetry = Telemetry()
        sim, client, _ = build(telemetry)
        run_workload(sim, client)
        trace = tmp_path / "run.jsonl"
        assert telemetry.export_jsonl(trace) > 0

        out_dir = tmp_path / "results"
        code = cli_main(["trace", str(trace), "--explain",
                         "--output", str(out_dir), "--quiet"])
        assert code == 0
        text = (out_dir / "trace.txt").read_text()
        assert "Trace forensics" in text
        assert "Decision-overhead breakdown" in text
        assert "crunch" in text
        assert "Decision for operation" in text  # --explain section

    def test_trace_subcommand_missing_file(self, tmp_path):
        code = cli_main(["trace", str(tmp_path / "absent.jsonl"),
                         "--output", str(tmp_path)])
        assert code == 2
