"""The null operation — the paper's §4.4 overhead probe.

"We measured Spectra's overhead by performing a null operation that
returns immediately after being invoked."  The operation has one plan
per location (local, remote), one fidelity, and no parameters; all of
its cost is Spectra itself.
"""

from __future__ import annotations

from typing import Generator

from ..core import OperationSpec, SpectraClient, local_plan, remote_plan
from ..odyssey import FidelitySpec


def make_null_spec(remote: bool = True) -> OperationSpec:
    """Null operation registration.

    ``remote=False`` registers only the local plan — the Figure-10
    "No Servers" configuration.
    """
    plans = (local_plan("null on the client"),)
    if remote:
        plans = plans + (remote_plan("null on a server"),)
    return OperationSpec(
        name="null-op",
        plans=plans,
        fidelity=FidelitySpec.fixed(),
    )


class NullApplication:
    """Driver issuing null operations through the full Spectra path."""

    def __init__(self, client: SpectraClient, remote: bool = True):
        self.client = client
        self.spec = make_null_spec(remote=remote)
        self._registered = False

    def register(self) -> Generator:
        result = yield from self.client.register_fidelity(self.spec)
        self._registered = True
        return result

    def invoke(self, force=None) -> Generator:
        """Process: one null operation; returns the OperationReport."""
        if not self._registered:
            raise RuntimeError("call register() before invoke()")
        handle = yield from self.client.begin_fidelity_op(
            self.spec.name, force=force,
        )
        if handle.plan_name == "remote":
            yield from self.client.do_remote_op(handle, "null", "null")
        else:
            yield from self.client.do_local_op(handle, "null", "null")
        report = yield from self.client.end_fidelity_op(handle)
        return report
