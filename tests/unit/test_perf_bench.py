"""Unit tests for the perf layer: timing primitives, schema, CLI plumbing.

Timing *values* are never asserted against thresholds here — wall-clock
numbers on a shared CI box are noise — only structure, bookkeeping, and
schema enforcement.
"""

import json

import pytest

from repro.perf.schema import (
    SCHEMA,
    BenchSchemaError,
    validate_bench_doc,
    validate_bench_file,
    validate_decision_doc,
    validate_scenarios_doc,
)
from repro.perf.timing import Measurement, measure, stopwatch


class TestMeasure:
    def test_counts_and_ordering(self):
        calls = []
        result = measure("m", lambda: calls.append(1), number=4, repeats=3)
        assert len(calls) == 12
        assert result.number == 4 and result.repeats == 3
        assert result.best_s <= result.mean_s <= result.worst_s

    def test_setup_runs_per_repeat_outside_timing(self):
        setups = []
        measure("m", lambda: None, number=2, repeats=5,
                setup=lambda: setups.append(1))
        assert len(setups) == 5

    def test_rejects_degenerate_counts(self):
        with pytest.raises(ValueError):
            measure("m", lambda: None, number=0)
        with pytest.raises(ValueError):
            measure("m", lambda: None, repeats=0)

    def test_to_dict_keys(self):
        result = measure("m", lambda: None, number=1, repeats=1)
        assert isinstance(result, Measurement)
        assert set(result.to_dict()) == {
            "number", "repeats", "best_s", "mean_s", "worst_s",
        }

    def test_stopwatch_monotone(self):
        elapsed = stopwatch()
        first = elapsed()
        assert first >= 0.0
        assert elapsed() >= first


def measurement_dict():
    return {"number": 3, "repeats": 2, "best_s": 0.001, "mean_s": 0.002,
            "worst_s": 0.003}


def decision_doc():
    return {
        "schema": SCHEMA,
        "suite": "decision",
        "quick": True,
        "python": "3.11.0",
        "platform": "linux",
        "benchmarks": {
            "snapshot": measurement_dict(),
            "predict": measurement_dict(),
            "solve": measurement_dict(),
            "kernel_events": measurement_dict(),
            "decision": {
                "baseline": measurement_dict(),
                "optimized": measurement_dict(),
                "speedup": 2.0,
                "same_choice": True,
            },
        },
    }


def scenarios_doc():
    return {
        "schema": SCHEMA,
        "suite": "scenarios",
        "quick": True,
        "python": "3.11.0",
        "platform": "linux",
        "benchmarks": {
            "walk-in-office": {
                "profile": "smoke", "repeats": 1, "wall_s": 1.5,
                "ops": 2, "completed": 2, "ops_per_s": 1.33,
                "sim_time_s": 40.0, "sim_s_per_wall_s": 26.7,
            },
        },
    }


class TestSchema:
    def test_valid_docs_pass(self):
        validate_decision_doc(decision_doc())
        validate_scenarios_doc(scenarios_doc())
        assert validate_bench_doc(decision_doc()) == "decision"
        assert validate_bench_doc(scenarios_doc()) == "scenarios"

    def test_wrong_schema_tag_fails(self):
        doc = decision_doc()
        doc["schema"] = "spectra-bench/999"
        with pytest.raises(BenchSchemaError, match="schema"):
            validate_decision_doc(doc)

    def test_missing_benchmark_fails(self):
        doc = decision_doc()
        del doc["benchmarks"]["solve"]
        with pytest.raises(BenchSchemaError, match="benchmarks.solve"):
            validate_decision_doc(doc)

    def test_non_numeric_timing_fails_path_qualified(self):
        doc = decision_doc()
        doc["benchmarks"]["snapshot"]["best_s"] = "fast"
        with pytest.raises(BenchSchemaError,
                           match=r"benchmarks.snapshot.best_s"):
            validate_decision_doc(doc)

    def test_nan_and_negative_rejected(self):
        doc = decision_doc()
        doc["benchmarks"]["solve"]["mean_s"] = float("nan")
        with pytest.raises(BenchSchemaError, match="finite"):
            validate_decision_doc(doc)
        doc = decision_doc()
        doc["benchmarks"]["solve"]["mean_s"] = -1.0
        with pytest.raises(BenchSchemaError, match=">= 0"):
            validate_decision_doc(doc)

    def test_divergent_choice_is_a_schema_error(self):
        doc = decision_doc()
        doc["benchmarks"]["decision"]["same_choice"] = False
        with pytest.raises(BenchSchemaError, match="different alternatives"):
            validate_decision_doc(doc)

    def test_bool_is_not_a_number(self):
        doc = decision_doc()
        doc["benchmarks"]["decision"]["speedup"] = True
        with pytest.raises(BenchSchemaError, match="speedup"):
            validate_decision_doc(doc)

    def test_scenarios_empty_benchmarks_fails(self):
        doc = scenarios_doc()
        doc["benchmarks"] = {}
        with pytest.raises(BenchSchemaError, match="empty"):
            validate_scenarios_doc(doc)

    def test_unknown_suite_fails(self):
        doc = decision_doc()
        doc["suite"] = "mystery"
        with pytest.raises(BenchSchemaError, match="unknown"):
            validate_bench_doc(doc)

    def test_every_problem_reported_not_just_first(self):
        doc = decision_doc()
        doc["benchmarks"]["snapshot"]["best_s"] = "fast"
        doc["benchmarks"]["solve"]["mean_s"] = -1.0
        with pytest.raises(BenchSchemaError) as excinfo:
            validate_decision_doc(doc)
        message = str(excinfo.value)
        assert "snapshot" in message and "solve" in message


class TestValidateFile:
    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH_decision.json"
        path.write_text(json.dumps(decision_doc()))
        assert validate_bench_file(str(path)) == "decision"

    def test_unparseable_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(BenchSchemaError, match="cannot read/parse"):
            validate_bench_file(str(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(BenchSchemaError):
            validate_bench_file(str(tmp_path / "absent.json"))


class TestBenchCli:
    def test_check_flags_bad_file(self, tmp_path, capsys):
        from repro.cli import main
        bad = tmp_path / "BENCH_decision.json"
        doc = decision_doc()
        del doc["benchmarks"]["predict"]
        bad.write_text(json.dumps(doc))
        assert main(["bench", "--check", str(bad)]) == 1
        assert "SCHEMA ERROR" in capsys.readouterr().err

    def test_check_passes_good_files(self, tmp_path, capsys):
        from repro.cli import main
        good = tmp_path / "BENCH_scenarios.json"
        good.write_text(json.dumps(scenarios_doc()))
        assert main(["bench", "--check", str(good)]) == 0
        assert "ok (scenarios)" in capsys.readouterr().out
