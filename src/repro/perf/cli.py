"""The ``repro bench`` command: run suites, write and validate BENCH files.

``repro bench``
    Run both suites and write ``BENCH_decision.json`` and
    ``BENCH_scenarios.json`` to ``--output`` (default: the repository
    root, where they are committed and diffed PR-over-PR).

``repro bench --quick``
    CI-sized run: fewer repeats, minimal training.  Same schema.

``repro bench --suite decision``
    One suite only.

``repro bench --check FILE [FILE ...]``
    Validate existing BENCH files against the ``spectra-bench/1``
    schema without running anything; exits 1 on the first bad file.
    This is what CI gates on — schema drift fails, timing noise never.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Dict

from .macro import run_macro_suite
from .micro import run_micro_suite
from .schema import SCHEMA, BenchSchemaError, validate_bench_doc, \
    validate_bench_file

SUITES = ("decision", "scenarios")


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--suite", choices=SUITES + ("all",),
                        default="all",
                        help="which suite to run (default: all)")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run: fewer repeats, less training")
    parser.add_argument("--output", default=".",
                        help="directory for BENCH_*.json files "
                             "(default: repository root)")
    parser.add_argument("--quiet", action="store_true",
                        help="write files without printing the summary")
    parser.add_argument("--check", nargs="+", metavar="FILE",
                        default=None,
                        help="validate existing bench files and exit; "
                             "runs nothing")


def _document(suite: str, quick: bool,
              benchmarks: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "schema": SCHEMA,
        "suite": suite,
        "quick": quick,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "platform": sys.platform,
        "benchmarks": benchmarks,
    }


def _summarize(suite: str, doc: Dict[str, Any]) -> str:
    lines = [f"suite {suite!r}:"]
    for name, entry in sorted(doc["benchmarks"].items()):
        if suite == "decision" and name == "decision":
            base = entry["baseline"]["best_s"]
            opt = entry["optimized"]["best_s"]
            lines.append(
                f"  {name:14s} baseline {base * 1e3:8.3f} ms  "
                f"optimized {opt * 1e3:8.3f} ms  "
                f"speedup {entry['speedup']:.2f}x"
            )
        elif suite == "decision":
            lines.append(
                f"  {name:14s} best {entry['best_s'] * 1e6:10.2f} us  "
                f"mean {entry['mean_s'] * 1e6:10.2f} us"
            )
        else:
            lines.append(
                f"  {name:22s} {entry['wall_s']:6.2f} s wall, "
                f"{entry['completed']}/{entry['ops']} ops, "
                f"{entry['ops_per_s']:6.2f} ops/s, "
                f"{entry['sim_s_per_wall_s']:8.1f} sim-s/wall-s"
            )
    return "\n".join(lines)


def run_bench_command(args: argparse.Namespace) -> int:
    if args.check is not None:
        for path in args.check:
            try:
                suite = validate_bench_file(path)
            except BenchSchemaError as exc:
                print(f"{path}: SCHEMA ERROR\n{exc}", file=sys.stderr)
                return 1
            if not args.quiet:
                print(f"{path}: ok ({suite})")
        return 0

    suites = list(SUITES) if args.suite == "all" else [args.suite]
    output_dir = pathlib.Path(args.output)
    output_dir.mkdir(parents=True, exist_ok=True)

    for suite in suites:
        if suite == "decision":
            benchmarks = run_micro_suite(quick=args.quick)
        else:
            benchmarks = run_macro_suite(quick=args.quick)
        doc = _document(suite, args.quick, benchmarks)
        # Self-check before writing: a malformed document must fail the
        # producing run, not the consuming CI job three PRs later.
        try:
            validate_bench_doc(doc)
        except BenchSchemaError as exc:
            print(f"BENCH_{suite}.json failed self-validation:\n{exc}",
                  file=sys.stderr)
            return 1
        path = output_dir / f"BENCH_{suite}.json"
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        if not args.quiet:
            print(_summarize(suite, doc))
            print(f"[written to {path}]\n")
    return 0
