"""Extension benchmark: continuous fidelity (the video player).

§3.4 allows continuous fidelities but none of the paper's applications
uses one.  The video player exercises a continuous frame-rate axis:
demand models regress on it, so costs at never-executed rates are
interpolated, and the solver lands on interior quality optima that a
discrete-only treatment could not predict without having tried them.
"""

import pytest

from repro.apps import (
    SOURCE_PATH,
    VideoApplication,
    VideoService,
    install_video_files,
)
from repro.coda import FileServer
from repro.core import DemandEstimator, SpectraNode
from repro.hosts import IBM_560X, SERVER_B
from repro.network import Network, SharedMedium
from repro.rpc import RpcTransport
from repro.sim import Simulator

from conftest import cached, save_figure


def _run():
    sim = Simulator()
    network = Network(sim)
    transport = RpcTransport(sim, network)
    fileserver = FileServer(sim, "fs")
    network.register_host("fs")
    install_video_files(fileserver)
    pda = SpectraNode(sim, network, transport, fileserver, "pda", IBM_560X)
    server = SpectraNode(sim, network, transport, fileserver, "srv",
                         SERVER_B, with_client=False)
    medium = SharedMedium(sim, 250_000.0, default_latency_s=0.002)
    for pair in (("pda", "srv"), ("pda", "fs"), ("srv", "fs")):
        network.connect(*pair, medium.attach())
    pda.coda.warm(SOURCE_PATH)
    server.coda.warm(SOURCE_PATH)
    for node in (pda, server):
        node.register_service(VideoService())
    client = pda.require_client()
    client.add_server("srv")
    sim.run_process(client.poll_servers())
    app = VideoApplication(client)
    sim.run_process(app.register())

    # Train ONLY the grid edges (5 and 30 fps).
    for alternative in app.spec.alternatives(["srv"]):
        if alternative.fidelity_dict()["frame_rate"] in (5.0, 30.0):
            sim.run_process(app.play_segment(force=alternative))
    sim.advance(30.0)
    sim.run_process(client.poll_servers())

    # Interpolation error at every untrained grid point, both plans.
    registered = client.operation(app.spec.name)
    rows = []
    for alternative in app.spec.alternatives(["srv"]):
        fidelity = alternative.fidelity_dict()
        if fidelity["frame_rate"] in (5.0, 30.0):
            continue
        estimator = DemandEstimator(
            app.spec, registered.predictor, client._take_snapshot(), {}
        )
        predicted = estimator.predict(alternative).total_time_s
        measured = sim.run_process(
            app.play_segment(force=alternative)
        ).elapsed_s
        rows.append((alternative.describe(), predicted, measured,
                     abs(predicted - measured) / measured))

    # Steady-state choice on a fresh decision.
    choice = sim.run_process(app.play_segment())
    return rows, choice


def _cells():
    return cached("video", _run)


@pytest.mark.benchmark(group="extensions")
def test_continuous_fidelity_interpolation(benchmark, results_dir):
    rows, choice = benchmark.pedantic(_cells, rounds=1, iterations=1)

    title = ("Extension: continuous fidelity — interpolated predictions at "
             "never-executed frame rates")
    lines = [title, "=" * len(title),
             f"{'alternative':52s} {'predicted':>9s} {'measured':>9s} "
             f"{'rel.err':>8s}"]
    for label, predicted, measured, error in rows:
        lines.append(f"{label:52s} {predicted:8.2f}s {measured:8.2f}s "
                     f"{error:7.1%}")
    lines.append(f"\nSpectra's steady-state pick: {choice.alternative.describe()}")
    save_figure(results_dir, "extension_video_continuous", "\n".join(lines))

    # Regression interpolation: every untrained point within 10%.
    errors = [error for _l, _p, _m, error in rows]
    assert max(errors) < 0.10
    assert sum(errors) / len(errors) < 0.05

    # The chosen frame rate is an interior optimum of the grid.
    rate = choice.alternative.fidelity_dict()["frame_rate"]
    assert 5.0 < rate < 30.0
