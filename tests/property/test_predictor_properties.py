"""Property-based tests for the demand predictors."""

import math

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.predictors import (
    BinnedLinearPredictor,
    EWMAModel,
    FileAccessPredictor,
    RecencyWeightedLinearModel,
)

finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
positive = st.floats(min_value=0.0, max_value=1e6,
                     allow_nan=False, allow_infinity=False)


@given(
    slope=st.floats(min_value=0.0, max_value=100.0),
    intercept=st.floats(min_value=0.0, max_value=1000.0),
    xs=st.lists(st.floats(min_value=0.0, max_value=100.0),
                min_size=3, max_size=30, unique=True),
    probe=st.floats(min_value=0.0, max_value=100.0),
)
@settings(max_examples=80, deadline=None)
def test_linear_model_recovers_noiseless_linear_data(slope, intercept, xs,
                                                     probe):
    """On exactly linear data the fit is exact (within float tolerance),
    regardless of recency weighting.

    Requires an identifiable design: x values clustered within float
    dust of each other (a spread below ~1e-6) cannot pin down a slope,
    so such draws are discarded rather than asserted on.
    """
    assume(max(xs) - min(xs) >= 1e-3)
    model = RecencyWeightedLinearModel(["x"], decay=0.9)
    for x in xs:
        model.observe({"x": x}, intercept + slope * x)
    expected = max(intercept + slope * probe, 0.0)
    assert model.predict({"x": probe}) == pytest.approx(
        expected, rel=1e-4, abs=1e-3
    )


@given(values=st.lists(positive, min_size=1, max_size=50))
@settings(max_examples=80, deadline=None)
def test_weighted_mean_within_observed_range(values):
    model = RecencyWeightedLinearModel([], decay=0.8)
    for value in values:
        model.observe({}, value)
    mean = model.weighted_mean()
    assert min(values) - 1e-9 <= mean <= max(values) + 1e-9


@given(values=st.lists(positive, min_size=1, max_size=50),
       alpha=st.floats(min_value=0.01, max_value=1.0))
@settings(max_examples=80, deadline=None)
def test_ewma_stays_within_observed_range(values, alpha):
    ewma = EWMAModel(alpha=alpha)
    for value in values:
        ewma.observe(value)
    assert min(values) - 1e-9 <= ewma.value <= max(values) + 1e-9


@given(
    observations=st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), positive, positive),
        min_size=1, max_size=40,
    ),
)
@settings(max_examples=60, deadline=None)
def test_binned_predictions_are_nonnegative(observations):
    predictor = BinnedLinearPredictor(["x"])
    for bin_key, x, y in observations:
        predictor.observe({"bin": bin_key}, {"x": x}, y)
    for bin_key in ("a", "b", "c", "unseen"):
        value = predictor.predict({"bin": bin_key}, {"x": 5.0})
        assert value >= 0.0
        assert math.isfinite(value)


@given(
    rounds=st.lists(
        st.sets(st.sampled_from(["/v/a", "/v/b", "/v/c"])),
        min_size=1, max_size=30,
    ),
)
@settings(max_examples=60, deadline=None)
def test_file_likelihoods_are_probabilities(rounds):
    predictor = FileAccessPredictor(alpha=0.4)
    for accessed in rounds:
        predictor.observe({}, {path: 100 for path in accessed})
    for _path, _size, likelihood in predictor.predict({}):
        assert 0.0 <= likelihood <= 1.0


@given(
    rounds=st.lists(
        st.sets(st.sampled_from(["/v/a", "/v/b"])),
        min_size=1, max_size=20,
    ),
    cached=st.sets(st.sampled_from(["/v/a", "/v/b"])),
)
@settings(max_examples=60, deadline=None)
def test_expected_fetch_bounded_by_total_uncached_size(rounds, cached):
    predictor = FileAccessPredictor(alpha=0.4)
    sizes = {"/v/a": 1000, "/v/b": 500}
    for accessed in rounds:
        predictor.observe({}, {p: sizes[p] for p in accessed})
    fetch = predictor.expected_fetch_bytes({}, cached_paths=cached)
    max_possible = sum(size for path, size in sizes.items()
                       if path not in cached)
    assert 0.0 <= fetch <= max_possible + 1e-9
