"""Utility functions: scoring execution alternatives (paper §3.6).

"The default utility function first predicts a context-independent value
for each metric: total execution time, total energy usage, and a vector
representing fidelity.  It then weights each value by its current
importance to the user and returns the product of the weighted values as
the utility of the alternative."

Concretely, for an alternative with predicted time ``T``, predicted
client energy ``E``, and fidelity point ``F``::

    utility = latency_desirability(T) * (1/E)**(k*c) * fidelity_desirability(F)

where ``c`` ∈ [0, 1] is the goal-directed importance of energy
conservation and ``k`` is a constant (10 in the paper).  When ``c`` is 0
energy does not affect utility at all; when ``c`` is 1 it dominates.

Applications may override the default with any callable taking an
:class:`AlternativePrediction` and returning a float.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

from .operation import OperationSpec
from .plans import Alternative

#: The paper's energy-weighting constant.
ENERGY_EXPONENT_K = 10.0


@dataclass
class AlternativePrediction:
    """Everything predicted about executing one alternative.

    ``components`` breaks total time down the way §3.6 describes: local
    CPU, remote CPU, network transmission, cache-miss service, and
    consistency (reintegration) time.  The breakdown is exposed for
    diagnostics, experiments, and tests; the utility uses the total.
    """

    alternative: Alternative
    total_time_s: float
    energy_joules: float
    components: Dict[str, float] = field(default_factory=dict)
    #: demand predictions backing the times (cycles, bytes, ...)
    demand: Dict[str, float] = field(default_factory=dict)
    feasible: bool = True
    infeasible_reason: str = ""


UtilityCallable = Callable[[AlternativePrediction], float]


class DefaultUtility:
    """The paper's multiplicative utility.

    Parameters
    ----------
    spec:
        The operation, supplying the application's latency and fidelity
        desirability functions.
    energy_importance:
        The goal-directed parameter ``c`` at decision time.
    k:
        Energy exponent constant (paper value 10).
    """

    def __init__(self, spec: OperationSpec, energy_importance: float,
                 k: float = ENERGY_EXPONENT_K):
        if not 0.0 <= energy_importance <= 1.0:
            raise ValueError(f"c out of [0,1]: {energy_importance}")
        self.spec = spec
        self.c = energy_importance
        self.k = k

    def __call__(self, prediction: AlternativePrediction) -> float:
        if not prediction.feasible:
            return float("-inf")
        time_term = self.spec.latency_desirability(prediction.total_time_s)
        fidelity_term = self.spec.fidelity_desirability(
            prediction.alternative.fidelity_dict()
        )
        energy_term = self._energy_term(prediction.energy_joules)
        return time_term * fidelity_term * energy_term

    def _energy_term(self, energy_joules: float) -> float:
        """``(1/E)**(k*c)``, guarded against degenerate inputs.

        Zero-energy predictions clamp to a small positive floor — the
        exponent would otherwise reward a mispredicted free lunch with
        infinite utility.
        """
        exponent = self.k * self.c
        # k or c set to exactly 0.0 means "energy does not matter": an
        # exact configuration sentinel, not an accumulated measurement.
        if exponent == 0.0:  # spectra: noqa[SPC004] -- exact config sentinel
            return 1.0
        energy = max(energy_joules, 1e-6)
        return (1.0 / energy) ** exponent


class AdditiveUtility:
    """Weighted-sum ablation of the default multiplicative form.

    DESIGN.md design decision #1: the paper multiplies metric terms; a
    natural alternative is a weighted sum.  This class exists so the
    ablation benchmark can compare decision quality under both.
    """

    def __init__(self, spec: OperationSpec, energy_importance: float,
                 time_weight: float = 1.0, energy_weight: float = 1.0,
                 fidelity_weight: float = 1.0):
        self.spec = spec
        self.c = energy_importance
        self.time_weight = time_weight
        self.energy_weight = energy_weight
        self.fidelity_weight = fidelity_weight

    def __call__(self, prediction: AlternativePrediction) -> float:
        if not prediction.feasible:
            return float("-inf")
        time_term = self.spec.latency_desirability(prediction.total_time_s)
        fidelity_term = self.spec.fidelity_desirability(
            prediction.alternative.fidelity_dict()
        )
        energy = max(prediction.energy_joules, 1e-6)
        energy_term = self.c * (1.0 / energy)
        return (self.time_weight * time_term
                + self.energy_weight * energy_term
                + self.fidelity_weight * fidelity_term)
