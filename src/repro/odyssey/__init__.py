"""Odyssey layer: fidelity specifications and energy-importance plumbing.

Goal-directed adaptation itself lives in :mod:`repro.energy.goal`; this
package re-exports it under the Odyssey name the paper uses.
"""

from ..energy.goal import GoalDirectedAdaptation
from .fidelity import (
    FidelityDimension,
    FidelityPoint,
    FidelitySpec,
    continuous_dimension,
)

__all__ = [
    "FidelityDimension",
    "continuous_dimension",
    "FidelityPoint",
    "FidelitySpec",
    "GoalDirectedAdaptation",
]
