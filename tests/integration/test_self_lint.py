"""Self-lint: the repo must satisfy its own sim-safety rule pack.

This is the acceptance gate for the analysis subsystem — the exact CI
invocations must exit 0 on the tree as committed:

* ``PYTHONPATH=src python -m repro lint src/repro tests`` (per-file
  rules), and
* ``PYTHONPATH=src python -m repro lint src/repro tests --deep
  --baseline check`` (the whole-program SPC1xx pack behind the
  committed-baseline ratchet).

Any new wall-clock call, unseeded RNG, unpaired lifecycle (lexical or
path-sensitive), float equality on a measurement, dead attribute,
swallowed exception, call-graph determinism leak, telemetry-name typo,
or stale suppression fails this test before it reaches CI.
"""

import json
import os
import pathlib
import subprocess
import sys

from repro.analysis import LintConfig, analyze_paths
from repro.analysis.baseline import DEFAULT_BASELINE_FILE, load_baseline

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
LINT_TARGETS = ["src/repro", "tests"]


def run_cli(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
    )


def test_repo_is_clean_in_process(monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    violations = analyze_paths(LINT_TARGETS, LintConfig())
    assert violations == [], "\n".join(v.render() for v in violations)


def test_repo_is_deep_clean_in_process(monkeypatch):
    """The whole-program pack has zero un-baselined findings — and the
    committed baseline is empty, so it has zero findings, full stop."""
    monkeypatch.chdir(REPO_ROOT)
    violations = analyze_paths(LINT_TARGETS, LintConfig(), deep=True)
    assert violations == [], "\n".join(v.render() for v in violations)


def test_repo_is_clean_via_cli():
    result = run_cli(*LINT_TARGETS)
    assert result.returncode == 0, (
        f"repro lint found violations:\n{result.stdout}{result.stderr}"
    )
    assert "clean" in result.stdout


def test_deep_baseline_check_via_cli():
    """The exact CI ratchet invocation stays green."""
    result = run_cli(*LINT_TARGETS, "--deep", "--baseline", "check")
    assert result.returncode == 0, (
        f"deep lint found un-baselined findings:\n"
        f"{result.stdout}{result.stderr}"
    )


def test_committed_baseline_is_empty():
    """The ratchet has ratcheted all the way down: every SPC1xx finding
    the deep pass ever grandfathered has been fixed.  New findings must
    be fixed, not re-baselined — this test makes growth loud."""
    baseline = load_baseline(str(REPO_ROOT / DEFAULT_BASELINE_FILE))
    assert baseline is not None, "committed lint-baseline.json unreadable"
    assert baseline == {}, (
        f"baseline grew to {len(baseline)} grandfathered findings; "
        f"fix them instead"
    )


def test_sarif_export_via_cli():
    """The CI artifact invocation produces a valid, empty SARIF run."""
    result = run_cli(*LINT_TARGETS, "--deep", "--format", "sarif")
    assert result.returncode == 0, result.stdout + result.stderr
    payload = json.loads(result.stdout)
    assert payload["version"] == "2.1.0"
    assert payload["runs"][0]["results"] == []


def test_benchmarks_are_clean_too(monkeypatch):
    """Benchmarks aren't in the CI gate but should stay clean."""
    monkeypatch.chdir(REPO_ROOT)
    violations = analyze_paths(["benchmarks"], LintConfig(), deep=True)
    assert violations == [], "\n".join(v.render() for v in violations)
