"""Policy comparison: Spectra vs the static and RPF baselines.

For each speech scenario, every policy picks an alternative (history-
based policies first observe the same training runs Spectra trained on),
the pick is executed for real, and its achieved utility is normalized
against the measured oracle.  This quantifies the paper's related-work
claims: static policies break whenever the environment moves away from
their assumption, and RPF — lacking per-resource monitors and fidelity —
cannot anticipate cache state, bandwidth changes, or quality trade-offs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from ..apps import SpeechWorkload, make_speech_spec
from ..baselines import (
    AlwaysLocalPolicy,
    AlwaysRemotePolicy,
    PlacementPolicy,
    RPFPolicy,
)
from . import speech as speech_exp
from .runner import best_measurement, utility_of


@dataclass
class PolicyOutcome:
    """One policy's result in one scenario."""

    policy: str
    scenario: str
    choice: str
    time_s: float
    energy_j: float
    relative_utility: float


def _policy_choice_run(policy: PlacementPolicy, scenario: str):
    """Fresh testbed; feed the policy history; execute its choice."""
    bed, app = speech_exp._build(scenario)
    alternatives = app.spec.alternatives(
        ["t20"] if bed.client.known_servers() else []
    )
    # History-based policies see the same training regimen Spectra did:
    # the usage log holds time per (plan, fidelity); replay it.
    registered = bed.client.operation(app.spec.name)
    by_context = {}
    for sample in registered.predictor.log:
        usage = sample.usage_dict()
        discrete = sample.discrete_dict()
        by_context.setdefault(
            (discrete.get("plan"), discrete.get("vocab")), []
        ).append((usage.get("time:total", 0.0),
                  usage.get("energy:client", 0.0)))
    for alternative in app.spec.alternatives(["t20"]):
        key = (alternative.plan.name, alternative.fidelity_dict()["vocab"])
        for time_s, energy_j in by_context.get(key, []):
            policy.observe(alternative, time_s, energy_j)

    choice = policy.choose(alternatives)
    e0 = bed.itsy.host.energy_consumed_joules()
    probe = SpeechWorkload().probes(1)[0]
    try:
        report = bed.sim.run_process(app.recognize(probe, force=choice))
        elapsed = report.elapsed_s
        energy = bed.itsy.host.energy_consumed_joules() - e0
    except Exception:
        elapsed, energy = float("inf"), float("inf")
    return choice, elapsed, energy


def run_policy_comparison(scenarios=speech_exp.SCENARIOS
                          ) -> List[PolicyOutcome]:
    """Spectra + four baselines across the speech scenarios."""
    spec = make_speech_spec()
    outcomes: List[PolicyOutcome] = []
    for scenario in scenarios:
        c = speech_exp.scenario_energy_importance(scenario)
        result = speech_exp.run_speech_scenario(scenario)
        _best_m, oracle = best_measurement(spec, c, result.measurements)

        def relative(time_s, energy_j, alternative) -> float:
            if math.isinf(time_s):
                return 0.0
            achieved = utility_of(spec, c, time_s, energy_j, alternative)
            return achieved / oracle if oracle > 0 else 0.0

        outcomes.append(PolicyOutcome(
            policy="spectra", scenario=scenario,
            choice=result.spectra.label,
            time_s=result.spectra.time_s, energy_j=result.spectra.energy_j,
            relative_utility=relative(result.spectra.time_s,
                                      result.spectra.energy_j,
                                      result.spectra.choice),
        ))
        for policy in (AlwaysLocalPolicy(), AlwaysRemotePolicy(),
                       RPFPolicy()):
            choice, time_s, energy_j = _policy_choice_run(policy, scenario)
            outcomes.append(PolicyOutcome(
                policy=policy.name, scenario=scenario,
                choice=choice.describe(), time_s=time_s, energy_j=energy_j,
                relative_utility=relative(time_s, energy_j, choice),
            ))
        # Random policy: report its exact expectation (the mean relative
        # utility over all alternatives) rather than one lucky sample.
        rels = [relative(m.time_s, m.energy_j, m.alternative)
                for m in result.measurements]
        outcomes.append(PolicyOutcome(
            policy="random", scenario=scenario,
            choice="(uniform over alternatives)",
            time_s=float("nan"), energy_j=float("nan"),
            relative_utility=sum(rels) / len(rels),
        ))
    return outcomes


def summarize(outcomes: List[PolicyOutcome]) -> Dict[str, float]:
    """Mean relative utility per policy across scenarios."""
    totals: Dict[str, List[float]] = {}
    for outcome in outcomes:
        totals.setdefault(outcome.policy, []).append(
            outcome.relative_utility
        )
    return {policy: sum(vals) / len(vals)
            for policy, vals in sorted(totals.items())}
