"""Integration tests: the canned scenario library end to end.

Every canned scenario must run its smoke profile to completion — all
generated operations complete (failing over or degrading to local
execution under the timeline's faults, never erroring out) — with real
traffic on the network.  Also pins the contention experiment to the
scenario compiler: the refactor must not move the measured numbers.
"""

import pytest

from repro.experiments.contention import run_contention_cell
from repro.scenarios import SCENARIOS, canned_spec, run_scenario, smoke_spec


class TestCannedScenarioSmoke:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_all_ops_complete_with_traffic(self, name):
        report = run_scenario(canned_spec(name), profile="smoke")
        assert report.completed, (
            f"{name}: {[op.error for op in report.ops if not op.completed]}"
        )
        assert len(report.ops) >= 1
        assert report.bytes_transferred > 0
        assert report.transfers > 0
        assert all(op.elapsed_s > 0 for op in report.ops)

    def test_smoke_profile_shrinks_but_keeps_world(self):
        full = canned_spec("server-churn-day")
        small = smoke_spec(full)
        assert small.hosts == full.hosts
        assert small.links == full.links
        assert small.duration_s <= 30.0
        assert all(c.arrivals.n_ops <= 2 for c in small.clients)
        assert all(e.at_s < 30.0 for e in small.timeline)

    def test_churn_scenario_exercises_fault_machinery(self):
        report = run_scenario(canned_spec("server-churn-day"),
                              profile="smoke")
        assert report.completed
        assert report.counters["faults.injected"] >= 1
        assert report.fault_journal

    def test_report_counters_present_even_when_clean(self):
        report = run_scenario(canned_spec("flash-crowd"), profile="smoke")
        for name in ("spectra.failovers", "rpc.retries", "faults.injected"):
            assert name in report.counters


class TestContentionViaCompiler:
    def test_measured_numbers_pinned(self):
        # The contention experiment builds its world through the
        # scenario compiler; these exact numbers pin the compiled world.
        # Re-baselined when HeuristicSolver switched from an identical
        # RNG stream every solve to a per-solve derived seed (the stream
        # reuse was a bug): restart starting points shifted, moving the
        # Spectra mean by ~0.03%.  Still run-to-run deterministic.
        cell = run_contention_cell(2)
        assert cell.n_clients == 2
        assert cell.spectra_mean_s == pytest.approx(
            6.634679144004593, abs=1e-9)
        assert cell.always_remote_mean_s == pytest.approx(
            6.6274688435754, abs=1e-9)
        assert cell.spectra_local_count == 0
