"""The per-operation demand predictor stack.

When an application calls ``register_fidelity``, "Spectra creates
predictors for each resource type.  Each predictor reads the logged
resource usage data and generates a parameterized model of demand ...
When subsequent operations are performed, Spectra updates the in-memory
model in addition to logging resource usage" (paper §3.4).

:class:`OperationDemandPredictor` bundles, for one registered operation:

* a :class:`~repro.predictors.datamodel.DataSpecificPredictor` per
  numeric resource (CPU cycles, bytes, RPC count, energy), binned on
  fidelity + plan and regressed on the input parameters;
* a :class:`~repro.predictors.fileaccess.FileAccessPredictor` for the
  file working set; and
* the backing :class:`~repro.predictors.logs.UsageLog`.

Applications may override any resource's model via
:meth:`set_custom_predictor` — the paper's "interface through which
application-specific predictors may be specified."
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Protocol, Sequence

from .binned import discrete_key
from .datamodel import DataSpecificPredictor
from .fileaccess import FileAccessPredictor
from .logs import UsageLog, UsageSample


class DemandModel(Protocol):
    """Interface application-specific predictors must satisfy."""

    def observe(self, discrete: Dict[str, Any], continuous: Dict[str, float],
                value: float, data_object: Optional[str] = None) -> None: ...

    def predict(self, discrete: Dict[str, Any], continuous: Dict[str, float],
                data_object: Optional[str] = None) -> float: ...


class NoModelError(LookupError):
    """A prediction was requested for a resource never yet observed."""


class OperationDemandPredictor:
    """All demand models for one registered operation."""

    #: prediction-memo entries before the cache is wholesale dropped —
    #: a guard against unbounded feature-value diversity, not an LRU.
    PREDICT_CACHE_MAX = 4096

    def __init__(self, feature_names: Sequence[str] = (),
                 decay: float = 0.95, window: int = 200,
                 log: Optional[UsageLog] = None):
        self.feature_names = tuple(feature_names)
        self.decay = decay
        self.window = window
        self.log = log if log is not None else UsageLog()
        self._models: Dict[str, DemandModel] = {}
        self._custom: Dict[str, DemandModel] = {}
        self.files = FileAccessPredictor()
        # Demand is a pure function of (model state, context): models
        # change only through observe_operation / set_custom_predictor,
        # both of which bump _version and drop this memo.  The solver
        # asks for the same handful of (resource, bin, features) demands
        # on every decision, so steady-state predictions become dict
        # hits instead of bin lookups + regression evaluations.
        self._version = 0
        self._predict_cache: Dict[tuple, Any] = {}
        #: set False to evaluate every prediction from the models (the
        #: pre-memo behavior); ``repro bench`` uses this for its
        #: baseline leg, and it doubles as an escape hatch for a custom
        #: model that cannot honor the purity contract.
        self.memoize = True
        # Rebuild in-memory models from an inherited log ("each predictor
        # reads the logged resource usage data").
        for sample in self.log:
            self._absorb(sample, record=False)

    # -- model management -------------------------------------------------------

    def set_custom_predictor(self, resource: str, model: DemandModel) -> None:
        """Install an application-specific model for *resource*.

        Like the built-in models, a custom model's ``predict`` must be a
        pure function of its ``observe`` history — predictions are
        memoized between observations.
        """
        self._custom[resource] = model
        self._invalidate_predictions()

    def _invalidate_predictions(self) -> None:
        self._version += 1
        if self._predict_cache:
            self._predict_cache.clear()

    def _model_for(self, resource: str) -> DemandModel:
        if resource in self._custom:
            return self._custom[resource]
        model = self._models.get(resource)
        if model is None:
            model = DataSpecificPredictor(
                self.feature_names, decay=self.decay, window=self.window
            )
            self._models[resource] = model
        return model

    # -- updating ----------------------------------------------------------------

    def observe_operation(
        self,
        timestamp: float,
        discrete: Dict[str, Any],
        continuous: Dict[str, float],
        usage: Dict[str, float],
        file_accesses: Optional[Dict[str, int]] = None,
        data_object: Optional[str] = None,
        concurrent: bool = False,
        skip_energy_when_concurrent: bool = True,
    ) -> UsageSample:
        """Log one completed operation and update every model.

        Energy samples from concurrently executing operations are skipped
        (paper §3.3.3: "Spectra ignores data gathered from concurrently
        executing operations when ... predicting future energy needs").
        """
        sample = UsageSample.build(
            timestamp=timestamp,
            discrete=discrete,
            continuous=continuous,
            usage=usage,
            data_object=data_object,
            concurrent=concurrent,
            file_accesses=file_accesses,
        )
        self.log.append(sample)
        self._absorb(
            sample,
            record=True,
            skip_energy_when_concurrent=skip_energy_when_concurrent,
        )
        return sample

    def _absorb(self, sample: UsageSample, record: bool,
                skip_energy_when_concurrent: bool = True) -> None:
        self._invalidate_predictions()
        discrete = sample.discrete_dict()
        continuous = sample.continuous_dict()
        for resource, value in sample.usage_dict().items():
            if (sample.concurrent and skip_energy_when_concurrent
                    and resource.startswith("energy")):
                continue
            self._model_for(resource).observe(
                discrete, continuous, value, data_object=sample.data_object
            )
        if sample.file_accesses:
            self.files.observe(
                discrete, sample.file_accesses_dict(),
                data_object=sample.data_object,
            )

    # -- predicting ---------------------------------------------------------------

    def predict(self, resource: str, discrete: Dict[str, Any],
                continuous: Dict[str, float],
                data_object: Optional[str] = None) -> float:
        """Predicted demand for *resource* under the given context."""
        if self.memoize:
            key = (resource, discrete_key(discrete),
                   tuple(sorted(continuous.items())), data_object)
            cached = self._predict_cache.get(key)
            if cached is not None:
                if type(cached) is float:
                    return cached
                raise NoModelError(cached[0])
        model = self._custom.get(resource) or self._models.get(resource)
        if model is None:
            # A never-observed resource stays model-less until observe()
            # creates its model, which invalidates the memo — cache this
            # miss too, or every solver search point rebuilds the
            # exception from scratch.
            message = f"no demand model for resource {resource!r} yet"
            if self.memoize:
                if len(self._predict_cache) >= self.PREDICT_CACHE_MAX:
                    self._predict_cache.clear()
                self._predict_cache[key] = (message,)
            raise NoModelError(message)
        try:
            value = float(
                model.predict(discrete, continuous, data_object=data_object)
            )
        except ValueError as exc:
            if self.memoize:
                # An untrained bin stays untrained until observe() fills
                # it, which invalidates the memo — cache the miss too.
                if len(self._predict_cache) >= self.PREDICT_CACHE_MAX:
                    self._predict_cache.clear()
                self._predict_cache[key] = (str(exc),)
            raise NoModelError(str(exc)) from exc
        if self.memoize:
            if len(self._predict_cache) >= self.PREDICT_CACHE_MAX:
                self._predict_cache.clear()
            self._predict_cache[key] = value
        return value

    def has_bin(self, resource: str, discrete: Dict[str, Any]) -> bool:
        """Has *resource* been observed under this exact discrete context?"""
        model = self._custom.get(resource) or self._models.get(resource)
        if model is None:
            return False
        has_bin = getattr(model, "has_bin", None)
        if has_bin is None:
            return True  # custom models without bin tracking: assume yes
        return bool(has_bin(discrete))

    def can_predict(self, resource: str) -> bool:
        model = self._custom.get(resource) or self._models.get(resource)
        if model is None:
            return False
        has_any = getattr(model, "has_any_model", None)
        return bool(has_any()) if has_any is not None else True

    def resources(self) -> List[str]:
        return sorted(set(self._models) | set(self._custom))
