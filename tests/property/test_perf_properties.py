"""Property-based tests for the performance layer.

Two invariants the perf work must never bend:

* the bench document schema is *stable* — any suite the harness can
  emit round-trips through the validator, and random corruptions of a
  valid document are rejected (so CI's schema gate has teeth);
* caching is *semantically invisible* — a solve through a
  :class:`SpaceCache`-shared :class:`SearchSpace` picks the identical
  alternative, at the identical utility, as a solve on a freshly built
  space, for arbitrary utility landscapes and seeds.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.core import OperationSpec, local_plan, remote_plan
from repro.core.utility import AlternativePrediction
from repro.odyssey import FidelitySpec
from repro.perf.schema import (
    SCHEMA,
    BenchSchemaError,
    validate_bench_doc,
)
from repro.perf.timing import measure
from repro.solver import HeuristicSolver, SearchSpace, SpaceCache


def make_space(n_servers, n_fidelities):
    spec = OperationSpec(
        "op", (local_plan(), remote_plan()),
        fidelity=FidelitySpec.single("level", tuple(range(n_fidelities))),
    )
    servers = [f"s{i}" for i in range(n_servers)]
    return spec, servers


def landscape(space, values):
    table = {}
    for i, alternative in enumerate(space.all_alternatives()):
        table[alternative] = values[i % len(values)]

    def predict(alternative):
        return AlternativePrediction(
            alternative=alternative,
            total_time_s=1.0 / max(table[alternative], 1e-9),
            energy_joules=1.0,
        )

    def utility(prediction):
        return table[prediction.alternative]

    return predict, utility


@given(
    n_servers=st.integers(min_value=0, max_value=3),
    n_fidelities=st.integers(min_value=1, max_value=4),
    values=st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=30),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_cached_space_solves_are_decision_identical(n_servers, n_fidelities,
                                                    values, seed):
    spec, servers = make_space(n_servers, n_fidelities)
    cache = SpaceCache()
    cached_space = cache.get(spec, servers)
    fresh_space = SearchSpace(spec, servers)

    predict, utility = landscape(fresh_space, values)
    # A fresh solver per leg: solves derive a per-solve seed from an
    # internal index, so only solvers at identical state are comparable.
    cached = HeuristicSolver(seed=seed).solve(cached_space, predict, utility)
    fresh = HeuristicSolver(seed=seed).solve(fresh_space, predict, utility)
    # And again through the cache: the second hit shares every memo.
    rewarmed = HeuristicSolver(seed=seed).solve(
        cache.get(spec, servers), predict, utility,
    )

    assert (cached.best and cached.best.alternative) == \
        (fresh.best and fresh.best.alternative) == \
        (rewarmed.best and rewarmed.best.alternative)
    assert cached.utility == fresh.utility == rewarmed.utility
    assert cached.evaluations == fresh.evaluations == rewarmed.evaluations


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_solver_solves_are_reproducible_but_distinct_per_call(seed):
    """Same solver state + same index → same walk; indices differ."""
    spec, servers = make_space(2, 3)
    space = SearchSpace(spec, servers)
    predict, utility = landscape(space, [3.0, 1.0, 4.0, 1.0, 5.0])

    first = HeuristicSolver(seed=seed).solve(space, predict, utility)
    again = HeuristicSolver(seed=seed).solve(space, predict, utility)
    assert first.best.alternative == again.best.alternative
    assert first.utility == again.utility


def measurement_strategy():
    timing = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
    return st.fixed_dictionaries({
        "number": st.integers(min_value=1, max_value=100),
        "repeats": st.integers(min_value=1, max_value=10),
        "best_s": timing, "mean_s": timing, "worst_s": timing,
    })


def decision_doc_strategy():
    return st.fixed_dictionaries({
        "schema": st.just(SCHEMA),
        "suite": st.just("decision"),
        "quick": st.booleans(),
        "python": st.just("3.11.0"),
        "platform": st.just("linux"),
        "benchmarks": st.fixed_dictionaries({
            "snapshot": measurement_strategy(),
            "predict": measurement_strategy(),
            "solve": measurement_strategy(),
            "kernel_events": measurement_strategy(),
            "decision": st.fixed_dictionaries({
                "baseline": measurement_strategy(),
                "optimized": measurement_strategy(),
                "speedup": st.floats(min_value=0.0, max_value=100.0,
                                     allow_nan=False),
                "same_choice": st.just(True),
            }),
        }),
    })


@given(doc=decision_doc_strategy())
@settings(max_examples=40, deadline=None)
def test_schema_accepts_any_well_formed_document(doc):
    assert validate_bench_doc(doc) == "decision"
    # Schema stability: the JSON round-trip validates identically.
    assert validate_bench_doc(json.loads(json.dumps(doc))) == "decision"


@given(
    doc=decision_doc_strategy(),
    path=st.sampled_from([
        ("schema",), ("suite",), ("benchmarks",),
        ("benchmarks", "snapshot"), ("benchmarks", "predict"),
        ("benchmarks", "solve"), ("benchmarks", "kernel_events"),
        ("benchmarks", "decision"),
        ("benchmarks", "snapshot", "best_s"),
        ("benchmarks", "decision", "speedup"),
        ("benchmarks", "decision", "same_choice"),
    ]),
)
@settings(max_examples=60, deadline=None)
def test_schema_rejects_any_deleted_or_corrupted_field(doc, path):
    target = doc
    for key in path[:-1]:
        target = target[key]
    del target[path[-1]]
    try:
        validate_bench_doc(doc)
    except BenchSchemaError:
        pass
    else:
        raise AssertionError(f"deleting {'.'.join(path)} went unnoticed")


@given(
    number=st.integers(min_value=1, max_value=5),
    repeats=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=20, deadline=None)
def test_measure_output_always_validates_as_measurement(number, repeats):
    result = measure("m", lambda: None, number=number, repeats=repeats)
    payload = result.to_dict()
    # Exactly the shape the bench schema demands of a measurement.
    assert set(payload) == {"number", "repeats", "best_s", "mean_s",
                            "worst_s"}
    assert payload["number"] == number and payload["repeats"] == repeats
    assert 0.0 <= payload["best_s"] <= payload["mean_s"] <= payload["worst_s"]
