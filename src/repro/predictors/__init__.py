"""Self-tuning demand prediction: logs, models, and the predictor stack."""

from .base import DemandModel, NoModelError, OperationDemandPredictor
from .binned import BinnedLinearPredictor, discrete_key
from .datamodel import DataSpecificPredictor
from .fileaccess import FileAccessPredictor
from .linear import EWMAModel, RecencyWeightedLinearModel
from .logs import UsageLog, UsageSample

__all__ = [
    "BinnedLinearPredictor",
    "DataSpecificPredictor",
    "DemandModel",
    "EWMAModel",
    "FileAccessPredictor",
    "NoModelError",
    "OperationDemandPredictor",
    "RecencyWeightedLinearModel",
    "UsageLog",
    "UsageSample",
    "discrete_key",
]
