"""Seeded traffic generation: arrival processes and think times.

Everything here is pure computation over an explicitly seeded
``random.Random`` — no wall clock, no global generator state — so the
same :class:`~repro.scenarios.spec.ScenarioSpec` and seed produce the
same issue times on every run, on every machine.

Arrival times are *offsets from the start of the measured phase*; the
runner anchors them to whatever simulated moment training and settling
finished at.
"""

from __future__ import annotations

import random
import zlib
from typing import List

from .spec import ArrivalSpec, ThinkSpec

#: Hard cap on generated arrivals per client, against degenerate specs
#: (e.g. a 1e6-second duration at 100 ops/s) hanging the runner.
MAX_ARRIVALS = 10_000


def derive_seed(base: int, *names: str) -> int:
    """A stable per-component seed from the scenario seed and a path.

    Uses CRC32 (not ``hash``) so the derivation survives
    ``PYTHONHASHSEED`` randomization and is identical across processes
    and platforms.
    """
    value = base & 0xFFFFFFFF
    for name in names:
        value = zlib.crc32(name.encode("utf-8"), value)
    return value


def generate_arrivals(spec: ArrivalSpec, rng: random.Random,
                      duration_s: float) -> List[float]:
    """Issue-time offsets in ``[0, duration_s)``, sorted ascending.

    Always returns at least one arrival: a client that exists generates
    traffic, even if the (scaled-down) duration left no room for its
    process — otherwise a smoke profile could silently test nothing.
    """
    if spec.kind == "poisson":
        times = _poisson(rng, spec.rate_ops_per_s, 0.0, duration_s)
    elif spec.kind == "fixed":
        interval = 1.0 / spec.rate_ops_per_s
        times, t = [], interval
        while t < duration_s and len(times) < MAX_ARRIVALS:
            times.append(t)
            t += interval
    elif spec.kind == "onoff":
        times, t = [], 0.0
        while t < duration_s and len(times) < MAX_ARRIVALS:
            times.extend(_poisson(rng, spec.rate_ops_per_s, t,
                                  min(t + spec.on_s, duration_s)))
            t += spec.on_s + spec.off_s
            if spec.off_s <= 0 and spec.on_s <= 0:
                break
        times = times[:MAX_ARRIVALS]
    elif spec.kind == "trace":
        times = [t for t in spec.times if t < duration_s]
    else:  # pragma: no cover - validate() rejects unknown kinds
        raise ValueError(f"unknown arrival kind {spec.kind!r}")

    if spec.n_ops is not None:
        times = times[:spec.n_ops]
    if not times:
        times = [0.0]
    return times


def _poisson(rng: random.Random, rate: float, start: float,
             end: float) -> List[float]:
    times = []
    t = start + rng.expovariate(rate)
    while t < end and len(times) < MAX_ARRIVALS:
        times.append(t)
        t += rng.expovariate(rate)
    return times


def think_time(spec: ThinkSpec, rng: random.Random) -> float:
    """One think-time draw (seconds); 0 for the ``none`` model."""
    if spec.kind == "none":
        return 0.0
    if spec.kind == "constant":
        return spec.mean_s
    if spec.kind == "exponential":
        return rng.expovariate(1.0 / spec.mean_s)
    raise ValueError(f"unknown think kind {spec.kind!r}")
