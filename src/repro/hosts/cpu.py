"""CPU model: a fair-share processor with per-owner cycle accounting.

The Spectra CPU monitor needs two things from a processor:

* **supply prediction** — "how many cycles/second would a new job get?",
  derived from recent competition (paper §3.3.1), and
* **demand observation** — "how many cycles did *this* operation use?",
  which on Linux comes from ``/proc``; here it comes from per-owner
  accounting on the simulated processor.

Both are provided by :class:`CPU`, which layers owner tags and a smoothed
utilization estimate on top of :class:`~repro.sim.resources.FairShareResource`.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Tuple

from ..sim import FairShareJob, FairShareResource, Simulator


class CPU:
    """A timeshared processor serving cycle-denominated jobs.

    Jobs are tagged with an *owner* string (analogous to a pid).  The CPU
    maintains cumulative cycles served per owner, which the CPU monitor
    reads before and after an operation — exactly how Spectra samples
    ``/proc`` statistics on real Linux.

    ``on_utilization_change(now, busy, active_jobs)`` fires on every
    scheduling change so power meters can track CPU-active time.
    """

    def __init__(
        self,
        sim: Simulator,
        cycles_per_second: float,
        name: str = "cpu",
        on_utilization_change: Optional[Callable[[float, bool, int], None]] = None,
    ):
        self._sim = sim
        self.name = name
        self._external_hook = on_utilization_change
        self._resource = FairShareResource(
            sim,
            cycles_per_second,
            name=f"{name}.cycles",
            on_utilization_change=self._on_change,
        )
        self._active: List[Tuple[str, FairShareJob]] = []
        self._finished_cycles: Dict[str, float] = {}
        self._external_owners: set = set()
        # Exponentially smoothed *external* load (total fair-share weight
        # of background jobs, a load average), updated at scheduling
        # changes and queries.
        self._smooth_load = 0.0
        self._last_util_sample = sim.now
        self._last_external_weight = 0.0
        #: smoothing horizon in seconds (recent load matters most)
        self.smoothing_horizon = 5.0

    # -- supply side ------------------------------------------------------------

    @property
    def cycles_per_second(self) -> float:
        """Nominal clock rate in cycles/second."""
        return self._resource.capacity

    @property
    def active_jobs(self) -> int:
        return self._resource.active_jobs

    @property
    def busy(self) -> bool:
        return self._resource.busy

    def instantaneous_competition(self, exclude_owner: Optional[str] = None) -> float:
        """Total weight of jobs currently running (optionally minus one owner).

        A new weight-1 job arriving now would get ``capacity / (comp + 1)``
        cycles/second.
        """
        return sum(
            job.weight
            for owner, job in self._active
            if job.remaining > 0 and owner != exclude_owner
        )

    def _external_weight(self) -> float:
        """Weight of currently running *external* (background) jobs."""
        return sum(
            job.weight
            for owner, job in self._active
            if job.remaining > 0 and owner in self._external_owners
        )

    def smoothed_load(self) -> float:
        """Exponentially smoothed external load (competing weight).

        This mirrors the paper's "smoothed estimate of recent load": the
        CPU monitor assumes background load continues at this level.  A
        steady weight-N background job smooths toward N.
        """
        self._sample_utilization()
        return self._smooth_load

    def smoothed_utilization(self) -> float:
        """Busy-fraction view of :meth:`smoothed_load`, clamped to [0, 1]."""
        return min(1.0, self.smoothed_load())

    def predicted_rate_for_new_job(self, exclude_owner: Optional[str] = None) -> float:
        """Cycles/second a new fair-share job is predicted to receive.

        Combines instantaneous competition with the smoothed utilization
        estimate: competition that has persisted gets full credit, a
        momentary blip is discounted.
        """
        competing = self.instantaneous_competition(exclude_owner=exclude_owner)
        # Blend instantaneous competition with history.  When there is no
        # current competition but recent history shows load, be slightly
        # pessimistic; when there is competition, trust it.
        historical = self._smoothed_competition()
        effective = max(competing, historical)
        return self.cycles_per_second / (effective + 1.0)

    def _smoothed_competition(self) -> float:
        """The smoothed external load *is* the predicted competing weight."""
        self._sample_utilization()
        return self._smooth_load

    # -- demand side --------------------------------------------------------------

    def submit(self, cycles: float, owner: str = "anon", weight: float = 1.0,
               external: bool = False) -> FairShareJob:
        """Queue *cycles* of work attributed to *owner*.

        ``external`` marks competing load that is *not* part of a Spectra
        operation (background processes).  Only external load feeds the
        smoothed competition estimate — the paper's CPU monitor measures
        "the percentage of cycles recently used by other processes", so
        an operation's own burst must not be projected forward as if it
        were persistent background load.
        """
        if external:
            self._external_owners.add(owner)
        job = self._resource.submit(cycles, weight=weight)
        if job.remaining > 0:
            self._active.append((owner, job))
            job.done.add_callback(lambda _ev: self._retire(owner, job))
        else:
            self._finished_cycles[owner] = (
                self._finished_cycles.get(owner, 0.0) + job.amount
            )
        self._resync_external()
        return job

    def run(self, cycles: float, owner: str = "anon", weight: float = 1.0) -> Generator:
        """Process-style helper: ``yield from cpu.run(cycles, owner=...)``."""
        job = self.submit(cycles, owner=owner, weight=weight)
        yield job.done
        return job

    def cancel(self, job: FairShareJob) -> None:
        """Abort a queued/in-flight job (used by background load control)."""
        self._resource.cancel(job)
        self._active = [(o, j) for o, j in self._active if j is not job]
        self._resync_external()

    def cycles_used_by(self, owner: str) -> float:
        """Cumulative cycles served to *owner* — the ``/proc`` equivalent.

        Includes partially served in-flight jobs, so sampling before and
        after an operation yields exactly the cycles the operation burned.
        """
        self._resource._settle()
        in_flight = sum(
            job.amount - job.remaining
            for job_owner, job in self._active
            if job_owner == owner
        )
        return self._finished_cycles.get(owner, 0.0) + in_flight

    def total_cycles_served(self) -> float:
        """Cumulative cycles served to all owners."""
        self._resource._settle()
        return self._resource.total_served

    # -- internals ---------------------------------------------------------------

    def _retire(self, owner: str, job: FairShareJob) -> None:
        self._active = [(o, j) for o, j in self._active if j is not job]
        self._finished_cycles[owner] = (
            self._finished_cycles.get(owner, 0.0) + (job.amount - job.remaining)
        )
        self._resync_external()

    def _sample_utilization(self) -> None:
        """Fold the interval since the last sample into the smoothed estimate.

        Only *external* (background) load counts: the paper's monitor
        measures competition from other processes, not from the
        operations Spectra itself placed.
        """
        now = self._sim.now
        elapsed = now - self._last_util_sample
        if elapsed <= 0:
            return
        alpha = min(1.0, elapsed / self.smoothing_horizon)
        self._smooth_load += alpha * (self._last_external_weight - self._smooth_load)
        self._last_util_sample = now

    def _resync_external(self) -> None:
        """Close the current smoothing interval and re-snapshot the
        external competing weight (called whenever membership changes —
        crucially *after* the active-job list reflects the change)."""
        self._sample_utilization()
        self._last_external_weight = self._external_weight()

    def _on_change(self, now: float, busy: bool, active: int) -> None:
        self._resync_external()
        if self._external_hook is not None:
            self._external_hook(now, busy, active)


class BackgroundLoad:
    """A synthetic CPU-intensive competitor, like the paper's load jobs.

    ``nprocesses`` models that many always-runnable processes: the load
    holds a fair-share job of that weight, so a foreground operation
    receives ``1/(nprocesses+1)`` of the CPU — the fair-share outcome of
    competing with ``nprocesses`` spinners on a real kernel.
    """

    #: Cycles granted to the spinner each refill; large enough that refills
    #: are rare, small enough that cancellation settles promptly.
    CHUNK_SECONDS = 3600.0

    def __init__(self, sim: Simulator, cpu: CPU, nprocesses: int = 1,
                 owner: str = "background"):
        if nprocesses < 1:
            raise ValueError("nprocesses must be >= 1")
        self._sim = sim
        self._cpu = cpu
        self._weight = float(nprocesses)
        self.owner = owner
        self._job = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Begin competing for the CPU."""
        if self._running:
            return
        self._running = True
        self._refill()

    def stop(self) -> None:
        """Stop competing; the in-flight chunk is cancelled."""
        if not self._running:
            return
        self._running = False
        if self._job is not None:
            self._cpu.cancel(self._job)
            self._job = None

    def _refill(self) -> None:
        if not self._running:
            return
        cycles = self._cpu.cycles_per_second * self.CHUNK_SECONDS
        self._job = self._cpu.submit(cycles, owner=self.owner,
                                     weight=self._weight, external=True)

        def on_done(_event) -> None:
            if self._running:
                self._refill()

        self._job.done.add_callback(on_done)
