"""The predictor store: learned demand models persisted across runs.

The paper's self-tuning loop only closes if measurements outlive the
process: "Spectra logs resource usage and creates models that predict
future demand" (§3.3), and at registration "each predictor reads the
logged resource usage data" (§3.4).  A :class:`PredictorStore` is that
on-disk log — one versioned JSON document per registered operation,
holding the operation's :class:`~repro.predictors.logs.UsageLog`, the
feature/decay/window configuration the models were trained under, and
an integrity digest.

Design constraints, in order:

* **never corrupt on crash** — documents are written to a temp file in
  the store directory and atomically renamed into place;
* **never crash on corruption** — a truncated, hand-edited, or
  wrong-version document degrades to a cold start (``load`` returns
  ``None``) and bumps the ``spectra.predictors.store.errors`` counter,
  because a warm start is an optimization, not a correctness
  requirement;
* **deterministic bytes** — the same samples serialize to the same
  document, so saves are digest-stable and byte-diffable across runs.

``merge`` unions two operations' histories: samples are deduplicated
exactly, ordered by (timestamp, serialized form), and bounded by the
log's ``max_samples`` keeping the newest — so merging a store into
itself is the identity and merge order cannot change the result.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..telemetry import Telemetry, ensure_telemetry
from .logs import UsageLog

#: current document schema; anything else degrades to cold start
STORE_SCHEMA = "spectra-predictor-store/1"

#: characters allowed verbatim in a document filename
_SAFE_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_."
)


class PredictorStoreError(ValueError):
    """A store document is unreadable, corrupt, or wrong-version."""


def _encode_name(operation: str) -> str:
    """Filesystem-safe, reversible encoding of an operation name."""
    return "".join(
        c if c in _SAFE_CHARS else f"%{ord(c):02x}"
        for c in operation
    )


def _canonical(body: Dict[str, Any]) -> str:
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def document_digest(body: Dict[str, Any]) -> str:
    """Integrity digest over a document body (everything but ``digest``)."""
    return hashlib.sha256(_canonical(body).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StoredPredictor:
    """One operation's persisted state, as loaded from the store."""

    operation: str
    feature_names: Tuple[str, ...]
    decay: float
    window: int
    log: UsageLog
    digest: str

    @property
    def n_samples(self) -> int:
        return len(self.log)


class PredictorStore:
    """A directory of per-operation predictor documents."""

    def __init__(self, root, telemetry: Optional[Telemetry] = None):
        self.root = pathlib.Path(root)
        self.telemetry = ensure_telemetry(telemetry)

    # -- naming ----------------------------------------------------------------------

    def path_for(self, operation: str) -> pathlib.Path:
        return self.root / f"{_encode_name(operation)}.json"

    def scoped(self, name: str) -> "PredictorStore":
        """A sub-store under ``root/name`` (per-client, per-variant)."""
        return PredictorStore(self.root / _encode_name(name),
                              telemetry=self.telemetry)

    def operations(self) -> List[str]:
        """Operation names with a document on disk, sorted."""
        if not self.root.is_dir():
            return []
        names = []
        for path in self.root.iterdir():
            if path.suffix == ".json" and path.is_file():
                try:
                    names.append(json.loads(path.read_text())["operation"])
                except (OSError, ValueError, KeyError, TypeError):
                    continue  # corrupt documents surface via load()
        return sorted(names)

    # -- saving ----------------------------------------------------------------------

    def save(self, operation: str, predictor) -> str:
        """Persist *predictor*'s log + config for *operation*; returns
        the document digest.

        *predictor* is any object with ``log``, ``feature_names``,
        ``decay``, and ``window`` attributes — in practice an
        :class:`~repro.predictors.base.OperationDemandPredictor`.
        """
        body = {
            "operation": operation,
            "config": {
                "feature_names": list(predictor.feature_names),
                "decay": predictor.decay,
                "window": predictor.window,
            },
            "log": predictor.log.to_payload(),
        }
        return self.save_document(operation, body)

    def save_document(self, operation: str, body: Dict[str, Any]) -> str:
        """Atomically write a document body (digest is recomputed here)."""
        body = dict(body)
        body.pop("digest", None)
        body["schema"] = STORE_SCHEMA
        digest = document_digest(body)
        document = dict(body)
        document["digest"] = digest
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(operation)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(document, sort_keys=True, indent=2) + "\n")
        os.replace(tmp, path)
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                "spectra.predictors.store.saves").inc()
        return digest

    # -- loading ---------------------------------------------------------------------

    def load_document(self, operation: str) -> Dict[str, Any]:
        """The raw verified document; raises :class:`PredictorStoreError`
        on any defect (missing file, bad JSON, schema or digest mismatch)."""
        path = self.path_for(operation)
        try:
            text = path.read_text()
        except OSError as exc:
            raise PredictorStoreError(
                f"cannot read predictor document {path}: {exc}") from exc
        try:
            document = json.loads(text)
        except ValueError as exc:
            raise PredictorStoreError(
                f"corrupt predictor document {path}: {exc}") from exc
        if not isinstance(document, dict):
            raise PredictorStoreError(
                f"corrupt predictor document {path}: not an object")
        schema = document.get("schema")
        if schema != STORE_SCHEMA:
            raise PredictorStoreError(
                f"predictor document {path} has schema {schema!r}; "
                f"this build reads {STORE_SCHEMA!r}")
        body = {k: v for k, v in document.items() if k != "digest"}
        expected = document_digest(body)
        if document.get("digest") != expected:
            raise PredictorStoreError(
                f"predictor document {path} failed its integrity check "
                f"(digest {document.get('digest')!r} != {expected!r})")
        return document

    def load(self, operation: str,
             max_samples: int = 5000) -> Optional[StoredPredictor]:
        """The stored state for *operation*, or ``None`` (cold start).

        A missing document is an ordinary cold start.  A *defective*
        document — corrupt, truncated, wrong schema, failed digest — is
        also a cold start, but counted on
        ``spectra.predictors.store.errors``: persistence must never be
        the thing that crashes a client.
        """
        if not self.path_for(operation).exists():
            return None
        try:
            document = self.load_document(operation)
            config = document.get("config") or {}
            stored = StoredPredictor(
                operation=str(document["operation"]),
                feature_names=tuple(config.get("feature_names", ())),
                decay=float(config.get("decay", 0.95)),
                window=int(config.get("window", 200)),
                log=UsageLog.from_payload(document["log"],
                                          max_samples=max_samples),
                digest=document["digest"],
            )
        except (PredictorStoreError, KeyError, TypeError, ValueError):
            if self.telemetry.enabled:
                self.telemetry.metrics.counter(
                    "spectra.predictors.store.errors").inc()
            return None
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                "spectra.predictors.store.loads").inc()
        return stored

    def digest(self, operation: str) -> Optional[str]:
        """The stored digest for *operation*, or ``None``."""
        try:
            return self.load_document(operation)["digest"]
        except PredictorStoreError:
            return None

    def state_digest(self) -> str:
        """One digest over every valid document — the report's
        ``predictor_state`` fingerprint."""
        parts = []
        for operation in self.operations():
            digest = self.digest(operation)
            if digest is not None:
                parts.append(f"{operation}:{digest}")
        return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()

    # -- merging ---------------------------------------------------------------------

    def merge(self, other: "PredictorStore",
              max_samples: int = 5000) -> Dict[str, int]:
        """Union *other*'s documents into this store.

        Returns ``{operation: merged sample count}``.  Defective source
        documents are skipped (and counted) rather than fatal; an
        operation present only in *other* is copied wholesale.
        """
        merged: Dict[str, int] = {}
        for operation in other.operations():
            theirs = other.load(operation, max_samples=max_samples)
            if theirs is None:
                continue
            ours = self.load(operation, max_samples=max_samples)
            if ours is None:
                log = theirs.log
                config = {
                    "feature_names": list(theirs.feature_names),
                    "decay": theirs.decay,
                    "window": theirs.window,
                }
            else:
                log = merge_logs(ours.log, theirs.log,
                                 max_samples=max_samples)
                config = {
                    "feature_names": list(ours.feature_names),
                    "decay": ours.decay,
                    "window": ours.window,
                }
            self.save_document(operation, {
                "operation": operation,
                "config": config,
                "log": log.to_payload(),
            })
            merged[operation] = len(log)
        return merged


def merge_logs(a: UsageLog, b: UsageLog,
               max_samples: int = 5000) -> UsageLog:
    """Deterministic union of two usage logs.

    Exact-duplicate samples collapse; the union is ordered by
    (timestamp, serialized sample) so merge order cannot matter; when
    the union exceeds *max_samples* the **newest** survive (the same
    recency preference the in-memory log applies).
    """
    seen = set()
    union = []
    for sample in list(a) + list(b):
        key = _canonical({
            "timestamp": sample.timestamp,
            "discrete": list(map(list, sample.discrete)),
            "continuous": list(map(list, sample.continuous)),
            "usage": list(map(list, sample.usage)),
            "data_object": sample.data_object,
            "concurrent": sample.concurrent,
            "file_accesses": list(map(list, sample.file_accesses)),
        })
        if key in seen:
            continue
        seen.add(key)
        union.append((sample.timestamp, key, sample))
    union.sort(key=lambda entry: entry[:2])
    if len(union) > max_samples:
        union = union[-max_samples:]
    log = UsageLog(max_samples=max_samples)
    for _ts, _key, sample in union:
        log.append(sample)
    return log


def rebuild_predictor(stored: StoredPredictor, predictor_cls=None):
    """A fresh predictor warm-started from a stored document.

    Used by the CLI and tests; the Spectra client itself passes the
    stored log into ``register_fidelity`` so the operation's declared
    feature set (not the stored one) wins.
    """
    if predictor_cls is None:
        from .base import OperationDemandPredictor as predictor_cls
    return predictor_cls(
        feature_names=stored.feature_names,
        decay=stored.decay,
        window=stored.window,
        log=stored.log,
    )
