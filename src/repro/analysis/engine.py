"""The analysis driver: files in, violations out.

Responsibilities split cleanly:

* :func:`analyze_source` — run the (scoped, enabled) rule pack over one
  already-read source string, honoring inline suppressions;
* :func:`analyze_file` / :func:`analyze_paths` — the filesystem layer:
  expand directories to ``*.py`` files, read them through the shared
  :class:`~repro.analysis.cache.ParseCache`, surface unreadable or
  unparseable files as violations (``SPC000`` / ``SPC999``) instead of
  exceptions;
* :class:`Project` + the ``deep=True`` mode of :func:`analyze_paths` —
  the whole-program layer: every successfully parsed file is collected
  into one :class:`Project`, the registered
  :class:`~repro.analysis.core.ProjectRule` pack (SPC1xx) runs over it,
  and its findings are suppression-filtered per file like any other
  rule's.  The per-file pass and the deep pass share one parse of every
  file.

The engine's hard guarantee — relied on by the property tests — is that
it **never raises** on any input path or text: a rule that crashes is
reported as an ``SPC000`` finding naming the rule and the error, so a
rule-pack bug fails the lint run loudly without taking the tool down.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from .cache import ParseCache
from .core import (
    INTERNAL_CODE,
    RULE_REGISTRY,
    SYNTAX_CODE,
    ProjectRule,
    Rule,
    RuleConfig,
    SourceFile,
    Violation,
    all_rules,
    is_project_rule,
)
from .suppressions import is_suppressed

#: Directory names never descended into during path expansion.
SKIP_DIRS = {".git", "__pycache__", ".venv", "venv", "node_modules",
             ".mypy_cache", ".ruff_cache", ".pytest_cache", "build", "dist"}

#: Process-wide parse cache shared by every sweep that doesn't bring
#: its own — the CLI's shallow and deep passes, and repeated in-process
#: sweeps (test suites), all reuse one parse per file.
_SHARED_CACHE = ParseCache()


@dataclass
class LintConfig:
    """Engine-level configuration: rule selection plus per-rule configs."""

    #: explicit allow-list of rule codes; None = all registered rules
    select: Optional[Sequence[str]] = None
    #: rule codes to drop after selection
    ignore: Sequence[str] = ()
    #: per-rule overrides, keyed by code
    rules: Dict[str, RuleConfig] = field(default_factory=dict)

    def rule_config(self, code: str) -> RuleConfig:
        return self.rules.setdefault(code, RuleConfig())

    def _selected(self) -> List[Rule]:
        selected = {code.upper() for code in self.select} \
            if self.select is not None else None
        ignored = {code.upper() for code in self.ignore}
        unknown = ((selected or set()) | ignored) - set(RULE_REGISTRY)
        if unknown:
            # A typo in --select silently linting nothing would defeat
            # the CI gate; make it a loud usage error instead.
            raise ValueError(
                f"unknown rule code(s): {', '.join(sorted(unknown))}"
            )
        active = []
        for rule in all_rules():
            if selected is not None and rule.code not in selected:
                continue
            if rule.code in ignored:
                continue
            if not self.rule_config(rule.code).enabled:
                continue
            active.append(rule)
        return active

    def active_rules(self) -> List[Rule]:
        """The per-file rules this config runs (SPC0xx pack)."""
        return [r for r in self._selected() if not is_project_rule(r)]

    def active_project_rules(self) -> List[ProjectRule]:
        """The whole-program rules this config runs (``--deep`` only)."""
        return [r for r in self._selected() if is_project_rule(r)]


class Project:
    """Every successfully parsed file of one deep sweep, plus context.

    Project rules read three things from here: the parsed
    :attr:`files`, the lazily built :attr:`index` (modules, defs,
    resolved call edges — see :mod:`repro.analysis.flow.project`), and
    :attr:`raw_findings` — every violation produced so far *before*
    suppression filtering, which is what the unused-suppression audit
    (SPC105) means by "would this waiver have suppressed anything".
    """

    def __init__(self, files: Dict[str, SourceFile],
                 config: "LintConfig"):
        self.files = files
        self.config = config
        #: pre-suppression findings from every rule that already ran,
        #: grown as the deep pass proceeds (code order).
        self.raw_findings: List[Violation] = []
        self._index = None

    @property
    def index(self):
        """The whole-program index, built once on first use."""
        if self._index is None:
            from .flow.project import ProjectIndex
            self._index = ProjectIndex.build(self.files)
        return self._index

    def sources(self) -> List[SourceFile]:
        return [self.files[path] for path in sorted(self.files)]


def _check_file(source: SourceFile,
                config: LintConfig) -> List[Violation]:
    """Run the per-file rule pack on one parsed source; pre-suppression."""
    violations: List[Violation] = []
    for rule in config.active_rules():
        rule_config = config.rule_config(rule.code)
        if not rule.applies_to(source, rule_config):
            continue
        try:
            violations.extend(rule.check(source, rule_config))
        except Exception as exc:
            # A rule bug must fail the lint run visibly, not crash it.
            violations.append(Violation(
                rule=INTERNAL_CODE, path=source.path, line=1, col=0,
                message=(f"rule {rule.code} ({rule.name}) crashed: "
                         f"{exc.__class__.__name__}: {exc}"),
            ))
    return violations


def _filter_suppressed(violations: Iterable[Violation],
                       files: Dict[str, SourceFile]) -> List[Violation]:
    kept = []
    for violation in violations:
        source = files.get(violation.path)
        if source is not None and is_suppressed(
                source.suppressions, violation.line, violation.rule):
            continue
        kept.append(violation)
    return kept


def analyze_source(path: str, text: str,
                   config: Optional[LintConfig] = None) -> List[Violation]:
    """Lint one source string; never raises."""
    config = config if config is not None else LintConfig()
    try:
        tree = ast.parse(text, filename=path)
    except (SyntaxError, ValueError) as exc:
        # ValueError: source with null bytes.
        line = getattr(exc, "lineno", None) or 1
        col = (getattr(exc, "offset", None) or 1) - 1
        return [Violation(rule=SYNTAX_CODE, path=path, line=line,
                          col=max(col, 0),
                          message=f"file does not parse: {exc.__class__.__name__}: {exc}")]

    source = SourceFile(path, text, tree)
    violations = _filter_suppressed(_check_file(source, config),
                                    {path: source})
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def analyze_file(path: str,
                 config: Optional[LintConfig] = None,
                 cache: Optional[ParseCache] = None) -> List[Violation]:
    """Read and lint one file; unreadable files become SPC000 findings."""
    config = config if config is not None else LintConfig()
    cache = cache if cache is not None else _SHARED_CACHE
    source, failures = cache.load(path)
    if source is None:
        return list(failures)
    violations = _filter_suppressed(_check_file(source, config),
                                    {path: source})
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories to a sorted, de-duplicated ``*.py`` list."""
    seen = set()
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d not in SKIP_DIRS)
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        full = os.path.join(dirpath, filename)
                        if full not in seen:
                            seen.add(full)
                            yield full
        else:
            # Non-existent paths flow through so analyze_file can report
            # them as findings rather than the walker silently skipping.
            if path not in seen:
                seen.add(path)
                yield path


def _check_project(project: Project, config: LintConfig) -> List[Violation]:
    """Run the whole-program rule pack; pre-suppression.  Never raises.

    Rules run in code order, appending their raw findings to
    ``project.raw_findings`` as they go — so a later pass (the SPC105
    suppression audit) sees everything the earlier ones would have
    reported.
    """
    produced: List[Violation] = []
    for rule in config.active_project_rules():
        rule_config = config.rule_config(rule.code)
        try:
            found = list(rule.check_project(project, rule_config))
        except Exception as exc:
            found = [Violation(
                rule=INTERNAL_CODE, path="<project>", line=1, col=0,
                message=(f"rule {rule.code} ({rule.name}) crashed: "
                         f"{exc.__class__.__name__}: {exc}"),
            )]
        produced.extend(found)
        project.raw_findings.extend(found)
    return produced


def analyze_paths(paths: Sequence[str],
                  config: Optional[LintConfig] = None,
                  deep: bool = False,
                  cache: Optional[ParseCache] = None) -> List[Violation]:
    """Lint every Python file under *paths*; never raises.

    With ``deep=True`` the whole-program pack (SPC1xx) additionally
    runs over all successfully parsed files at once, sharing the same
    single parse of each file with the per-file rules.
    """
    config = config if config is not None else LintConfig()
    cache = cache if cache is not None else _SHARED_CACHE
    files: Dict[str, SourceFile] = {}
    violations: List[Violation] = []
    raw: List[Violation] = []
    for path in iter_python_files(paths):
        source, failures = cache.load(path)
        if source is None:
            violations.extend(failures)
            continue
        files[path] = source
        raw.extend(_check_file(source, config))
    violations.extend(_filter_suppressed(raw, files))

    if deep:
        project = Project(files, config)
        project.raw_findings.extend(raw)
        deep_raw = _check_project(project, config)
        violations.extend(_filter_suppressed(deep_raw, files))

    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations
