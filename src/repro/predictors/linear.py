"""Recency-weighted linear regression — the default numeric model.

"The default predictor uses linear regression to model continuous
variables.  It adjusts for changes in application behavior over time by
giving more recent samples a greater weight in its predictions"
(paper §3.4).

:class:`RecencyWeightedLinearModel` fits ``y ≈ a + Σ b_i · x_i`` by
weighted least squares, with sample weights decaying geometrically in
recency order.  Degenerate designs (no samples with a given feature
spread, collinear features) fall back gracefully: a constant feature
contributes through the intercept, and an empty model predicts the
recency-weighted mean of whatever it has seen.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class RecencyWeightedLinearModel:
    """Incrementally updated weighted least-squares model.

    Parameters
    ----------
    feature_names:
        Names of the continuous inputs, fixing the design-matrix order.
    decay:
        Per-sample geometric decay: the newest sample has weight 1, the
        one before it ``decay``, then ``decay**2``...  ``decay=1`` is
        ordinary least squares.
    window:
        Maximum retained samples; older ones are dropped (their weight
        would be negligible anyway).
    """

    def __init__(self, feature_names: Sequence[str] = (),
                 decay: float = 0.95, window: int = 200):
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1]: {decay}")
        if window < 2:
            raise ValueError(f"window too small: {window}")
        self.feature_names: Tuple[str, ...] = tuple(feature_names)
        self.decay = decay
        self.window = window
        self._xs: List[Tuple[float, ...]] = []
        self._ys: List[float] = []
        self._coef: Optional[np.ndarray] = None  # [intercept, b_1..b_k]
        self._stale = True

    # -- updating -------------------------------------------------------------------

    def observe(self, features: Dict[str, float], value: float) -> None:
        """Add one (features → value) observation."""
        x = tuple(float(features.get(name, 0.0)) for name in self.feature_names)
        self._xs.append(x)
        self._ys.append(float(value))
        if len(self._ys) > self.window:
            drop = len(self._ys) - self.window
            del self._xs[:drop]
            del self._ys[:drop]
        self._stale = True

    @property
    def n_samples(self) -> int:
        return len(self._ys)

    # -- predicting ------------------------------------------------------------------

    def predict(self, features: Dict[str, float]) -> float:
        """Predict the value at *features*; raises if never trained."""
        if not self._ys:
            raise ValueError("model has no observations")
        self._refit()
        assert self._coef is not None
        x = np.array(
            [1.0] + [float(features.get(n, 0.0)) for n in self.feature_names]
        )
        prediction = float(x @ self._coef)
        # Resource usage is non-negative by construction; a regression
        # extrapolating below zero is lying.
        return max(prediction, 0.0)

    def weighted_mean(self) -> float:
        """Recency-weighted mean of observed values (feature-free view)."""
        if not self._ys:
            raise ValueError("model has no observations")
        weights = self._weights()
        return float(np.average(np.array(self._ys), weights=weights))

    # -- internals --------------------------------------------------------------------

    def _weights(self) -> np.ndarray:
        n = len(self._ys)
        # newest (index n-1) gets weight 1; oldest gets decay**(n-1)
        return self.decay ** np.arange(n - 1, -1, -1, dtype=float)

    def _refit(self) -> None:
        if not self._stale:
            return
        n = len(self._ys)
        k = len(self.feature_names)
        y = np.array(self._ys)
        weights = self._weights()
        design = np.ones((n, k + 1))
        if k:
            design[:, 1:] = np.array(self._xs, dtype=float).reshape(n, k)
        # Columns with no variance carry no information; zero them so the
        # pseudo-inverse routes their effect through the intercept.
        sw = np.sqrt(weights)
        weighted_design = design * sw[:, None]
        weighted_y = y * sw
        coef, *_ = np.linalg.lstsq(weighted_design, weighted_y, rcond=None)
        self._coef = coef
        self._stale = False

    def __repr__(self) -> str:
        return (f"<RecencyWeightedLinearModel features={self.feature_names} "
                f"n={self.n_samples}>")


class EWMAModel:
    """Exponentially weighted moving average of a scalar.

    The building block of the file-access-likelihood predictor: each
    file's access indicator (1 accessed / 0 not) feeds an EWMA whose
    current value *is* the access probability estimate.
    """

    def __init__(self, alpha: float = 0.3, initial: Optional[float] = None):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1]: {alpha}")
        self.alpha = alpha
        self._value = initial
        self._count = 0 if initial is None else 1

    def observe(self, value: float) -> None:
        value = float(value)
        if self._value is None:
            self._value = value
        else:
            self._value += self.alpha * (value - self._value)
        self._count += 1

    @property
    def value(self) -> float:
        if self._value is None:
            raise ValueError("EWMA has no observations")
        return self._value

    @property
    def n_samples(self) -> int:
        return self._count
