"""Property-based tests for usage-log / predictor-store round trips.

The invariant under test is the one the self-tuning loop depends on:
whatever a run logs, a later run must reconstruct *exactly* — same
samples, same bin keys, same predictions — no matter what discrete
values, operation names, or merge orders the workload produced.
"""

from hypothesis import given, settings, strategies as st

from repro.predictors import (
    OperationDemandPredictor,
    PredictorStore,
    UsageLog,
    UsageSample,
    merge_logs,
)
from repro.predictors.base import NoModelError

finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
positive = st.floats(min_value=0.0, max_value=1e6,
                     allow_nan=False, allow_infinity=False)

#: JSON-primitive discrete values plus the problematic non-primitives:
#: tuples (the original round-trip bug) and nested tuples.
primitive = st.one_of(
    st.text(max_size=8), st.integers(-100, 100), st.booleans(), st.none(),
    st.floats(min_value=-100, max_value=100,
              allow_nan=False, allow_infinity=False),
)
discrete_value = st.one_of(
    primitive,
    st.tuples(primitive, primitive),
    st.tuples(primitive, st.tuples(primitive, primitive)),
    st.lists(primitive, max_size=3),
)

samples = st.lists(
    st.tuples(
        st.dictionaries(st.sampled_from(["plan", "vocab", "mode"]),
                        discrete_value, max_size=3),
        st.dictionaries(st.sampled_from(["x", "y"]), positive, max_size=2),
        st.dictionaries(st.sampled_from(["cpu:local", "net:bytes"]),
                        positive, min_size=1, max_size=2),
        st.one_of(st.none(), st.sampled_from(["doc-a", "doc-b"])),
        st.booleans(),
    ),
    min_size=1, max_size=25,
)


def build_log(raw):
    log = UsageLog()
    for index, (discrete, continuous, usage, data_object, conc) in \
            enumerate(raw):
        log.append(UsageSample.build(
            timestamp=float(index), discrete=discrete,
            continuous=continuous, usage=usage,
            data_object=data_object, concurrent=conc,
        ))
    return log


@given(raw=samples)
@settings(max_examples=80, deadline=None)
def test_usage_log_json_roundtrip_is_exact(raw):
    log = build_log(raw)
    restored = UsageLog.from_json(log.to_json())
    assert restored.samples() == log.samples()
    # and re-serializing produces identical bytes
    assert restored.to_json() == log.to_json()


@given(raw=samples)
@settings(max_examples=50, deadline=None)
def test_rebuilt_predictor_predicts_byte_identically(raw):
    live = OperationDemandPredictor(feature_names=["x", "y"])
    for index, (discrete, continuous, usage, data_object, conc) in \
            enumerate(raw):
        live.observe_operation(
            timestamp=float(index), discrete=discrete,
            continuous=continuous, usage=usage,
            data_object=data_object, concurrent=conc,
        )
    rebuilt = OperationDemandPredictor(
        feature_names=["x", "y"],
        log=UsageLog.from_json(live.log.to_json()),
    )
    for discrete, continuous, _usage, data_object, _conc in raw:
        for resource in ("cpu:local", "net:bytes"):
            try:
                expected = live.predict(resource, discrete, continuous,
                                        data_object=data_object)
            except NoModelError:
                continue
            assert rebuilt.predict(
                resource, discrete, continuous, data_object=data_object
            ) == expected


@given(raw=samples)
@settings(max_examples=40, deadline=None)
def test_store_save_load_save_is_a_fixed_point(raw, tmp_path_factory):
    store = PredictorStore(tmp_path_factory.mktemp("store"))
    predictor = OperationDemandPredictor(feature_names=["x"],
                                         log=build_log(raw))
    first = store.save("op", predictor)
    stored = store.load("op")
    assert stored.log.samples() == predictor.log.samples()
    # saving what was loaded reproduces the identical document
    assert store.save("op", stored) == first


@given(raw_a=samples, raw_b=samples)
@settings(max_examples=40, deadline=None)
def test_merge_logs_commutative_and_idempotent(raw_a, raw_b):
    a, b = build_log(raw_a), build_log(raw_b)
    ab = merge_logs(a, b)
    ba = merge_logs(b, a)
    assert ab.samples() == ba.samples()
    assert merge_logs(ab, ab).samples() == ab.samples()
    assert merge_logs(a, a).samples() == a.samples()
