"""The Coda client: caching, weak connectivity, and reintegration.

One :class:`CodaClient` runs on every machine that executes application
code (including Spectra servers — "server B does not have any input files
cached" is a statement about server B's Coda client).  The client:

* serves reads from its whole-file cache, fetching misses from the file
  server over the network;
* buffers writes in a client modify log (CML) when *weakly connected*,
  or reintegrates them immediately when strongly connected;
* exposes the observation hooks Spectra's file-cache-state monitor needs:
  the list of cached files, a fetch-rate estimate, and a per-operation
  access log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from ..network import Network
from ..sim import Simulator, Timeout
from ..telemetry import Telemetry, ensure_telemetry
from .cache import FileCache
from .objects import volume_of
from .reintegration import REINTEGRATION_EFFICIENCY, ChangeLog, Conflict
from .server import FileServer


class DisconnectedError(RuntimeError):
    """Raised when an uncached file is accessed with no path to the server."""


@dataclass(frozen=True)
class FileAccess:
    """One observed file access (the monitor's raw material)."""

    time: float
    path: str
    size: int
    hit: bool


#: Size of a version-validation RPC (metadata only), bytes.
_VALIDATE_RPC_BYTES = 128


class CodaClient:
    """Coda client instance attached to one host.

    Parameters
    ----------
    sim, host_name, server, network:
        Kernel, owning host's name, the authoritative
        :class:`~repro.coda.server.FileServer`, and the topology that
        connects them.
    cache_capacity_bytes:
        Whole-file LRU cache size.
    weakly_connected:
        When True, stores buffer in the CML (visible to other machines
        only after reintegration).  When False, stores reintegrate
        immediately (strong consistency).
    """

    def __init__(
        self,
        sim: Simulator,
        host_name: str,
        server: FileServer,
        network: Network,
        cache_capacity_bytes: int = 50 * 1024 * 1024,
        weakly_connected: bool = False,
        name: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self._sim = sim
        self.host_name = host_name
        self.server = server
        self.network = network
        self.telemetry = ensure_telemetry(telemetry)
        self.name = name or f"coda@{host_name}"
        self.cache = FileCache(cache_capacity_bytes)
        self.cml = ChangeLog()
        self.weakly_connected = weakly_connected
        self.access_log: List[FileAccess] = []
        self._trickling = False
        #: update/update conflicts detected at reintegration
        self.conflicts: List[Conflict] = []
        server.register_client(self)

    # -- connectivity ------------------------------------------------------------

    @property
    def connected(self) -> bool:
        """True when the file server is reachable right now."""
        return self.network.connected(self.host_name, self.server.host_name)

    # -- read path -----------------------------------------------------------------

    def access(self, path: str) -> Generator:
        """Process: read *path*; returns the :class:`FileAccess` record.

        Cache hit with a valid callback: free (local disk).  Stale copy:
        revalidate with a metadata RPC, refetch if the version moved.
        Miss: fetch the whole file from the server.
        """
        entry = self.cache.get(path)
        if entry is not None and (entry.has_callback or entry.dirty):
            record = FileAccess(self._sim.now, path, entry.size, hit=True)
            self.access_log.append(record)
            return record

        if entry is not None and not entry.has_callback:
            # Stale: revalidate.  Version unchanged -> regain callback.
            yield from self._require_connection(path)
            yield from self.network.transfer(
                self.host_name, self.server.host_name, _VALIDATE_RPC_BYTES,
                kind="rpc",
            )
            authoritative = self.server.lookup(path)
            if authoritative.version == entry.version:
                entry.has_callback = True
                self.server.grant_callback(path, self.name)
                record = FileAccess(self._sim.now, path, entry.size, hit=True)
                self.access_log.append(record)
                return record
            self.cache.evict(path)

        # Miss: whole-file fetch.
        yield from self._require_connection(path)
        authoritative = self.server.lookup(path)
        yield from self.network.transfer(
            self.server.host_name, self.host_name, authoritative.size,
            kind="bulk",
        )
        self.cache.insert(path, authoritative.size, authoritative.version)
        self.server.grant_callback(path, self.name)
        record = FileAccess(self._sim.now, path, authoritative.size, hit=False)
        self.access_log.append(record)
        return record

    def _require_connection(self, path: str) -> Generator:
        if not self.connected:
            raise DisconnectedError(
                f"{self.name}: {path!r} not cached and file server unreachable"
            )
        return
        yield  # pragma: no cover - generator marker

    # -- write path ------------------------------------------------------------------

    def modify(self, path: str, new_size: int) -> Generator:
        """Process: store whole-file contents for *path* (size *new_size*).

        Whole-file overwrite semantics (Coda's store): the old contents
        are not needed, so an uncached target costs only a metadata
        lookup, not a data fetch.  Weakly connected: the store lands in
        the CML.  Strongly connected: the volume reintegrates
        immediately.
        """
        entry = self.cache.get(path)
        if entry is None:
            authoritative = self.server.lookup(path)
            entry = self.cache.insert(path, authoritative.size,
                                      authoritative.version)
        base_version = entry.version
        self.cache.mark_dirty(path, new_size)
        self.cml.log_store(path, new_size, self._sim.now,
                           base_version=base_version)
        if not self.weakly_connected:
            yield from self.reintegrate_volume(volume_of(path))
        return None

    # -- reintegration -----------------------------------------------------------------

    def pending_reintegration_bytes(self, volume: str) -> int:
        return self.cml.pending_bytes(volume)

    def dirty_volumes(self) -> List[str]:
        return self.cml.dirty_volumes()

    def has_pending_store(self, path: str) -> bool:
        return self.cml.has_pending(path)

    def reintegrate_volume(self, volume: str) -> Generator:
        """Process: push all buffered stores for *volume* to the server.

        Volume granularity is load-bearing: one modified file drags its
        whole volume's CML across the network (paper §3.5).
        """
        nbytes = self.cml.pending_bytes(volume)
        if nbytes == 0:
            return 0.0
        span = self.telemetry.tracer.start_span(
            "coda.reintegrate", host=self.host_name, volume=volume,
            bytes=nbytes,
        )
        try:
            yield from self._require_connection(f"/{volume}/")
            # RPC2 chattiness: reintegration keeps the link busy for far
            # longer than the payload alone would
            # (REINTEGRATION_EFFICIENCY).
            wire_bytes = int(nbytes / REINTEGRATION_EFFICIENCY)
            elapsed = yield from self.network.transfer(
                self.host_name, self.server.host_name, wire_bytes,
                kind="bulk",
            )
        except BaseException as exc:
            # A disconnection or aborted transfer fails the push at a
            # yield; the span must still close with the failure on it.
            span.end(error=type(exc).__name__)
            raise
        conflicts_before = len(self.conflicts)
        for record in self.cml.clear_volume(volume):
            authoritative = self.server.lookup(record.path)
            if authoritative.version != record.base_version:
                # Someone else updated the file while this store sat in
                # the CML.  Record the conflict; apply ours on top
                # (last-writer-wins, visible for repair).
                self.conflicts.append(Conflict(
                    path=record.path,
                    base_version=record.base_version,
                    server_version=authoritative.version,
                    detected_at=self._sim.now,
                ))
            committed = self.server.commit_store(
                record.path, record.size, self.name
            )
            self.cache.mark_clean(record.path, committed.version)
            self.server.grant_callback(record.path, self.name)
        span.end(
            wire_bytes=wire_bytes, elapsed_s=elapsed,
            conflicts=len(self.conflicts) - conflicts_before,
        )
        if self.telemetry.enabled:
            metrics = self.telemetry.metrics
            metrics.counter("coda.reintegrations").inc()
            metrics.counter("coda.reintegrated_bytes").inc(nbytes)
            metrics.histogram("coda.reintegrate_s").observe(elapsed)
        return elapsed

    def reintegrate_all(self) -> Generator:
        """Process: reintegrate every dirty volume."""
        total = 0.0
        for volume in self.dirty_volumes():
            total += yield from self.reintegrate_volume(volume)
        return total

    def start_trickle(self, interval_s: float = 60.0) -> None:
        """Background trickle reintegration, as in real weakly-connected
        Coda: while connected, one dirty volume drains per period, so
        buffered updates eventually propagate even if Spectra never
        forces them.  Stop with :meth:`stop_trickle`.
        """
        if self._trickling:
            return
        self._trickling = True

        def loop():
            while self._trickling:
                yield Timeout(interval_s)
                if not self._trickling:
                    return
                if self.connected:
                    dirty = self.dirty_volumes()
                    if dirty:
                        yield from self.reintegrate_volume(dirty[0])

        self._sim.spawn(loop(), name=f"trickle@{self.host_name}")

    def stop_trickle(self) -> None:
        self._trickling = False

    # -- monitor hooks -----------------------------------------------------------------

    def cached_files(self) -> List[Tuple[str, int]]:
        """(path, size) for every *usable* cached file.

        Stale entries (broken callback) are excluded: the next access
        must revalidate and likely refetch, so for prediction purposes
        they are misses.
        """
        return [
            (entry.path, entry.size)
            for entry in self.cache.entries()
            if entry.has_callback or entry.dirty
        ]

    def is_cached(self, path: str) -> bool:
        entry = self.cache.get(path, touch=False)
        return entry is not None and (entry.has_callback or entry.dirty)

    def fetch_rate_estimate(self) -> float:
        """Predicted bytes/second for servicing cache misses right now."""
        if not self.connected:
            return 0.0
        probe = 1 << 20
        elapsed = self.network.estimate_transfer_time(
            self.server.host_name, self.host_name, probe
        )
        return probe / elapsed if elapsed > 0 else 0.0

    def access_log_mark(self) -> int:
        """Bookmark for slicing per-operation accesses (monitor start_op)."""
        return len(self.access_log)

    def accesses_since(self, mark: int) -> List[FileAccess]:
        return self.access_log[mark:]

    # -- hoarding ---------------------------------------------------------------------

    def hoard(self, path: str, priority: int = 100) -> None:
        """Pin *path* at a hoard priority (0 unpins).

        Hoarded files lose the eviction lottery last, and
        :meth:`hoard_walk` prefetches any that are missing — Coda's
        preparation-for-disconnection workflow.
        """
        self.cache.set_hoard_priority(path, priority)

    def hoard_walk(self) -> Generator:
        """Process: fetch every hoarded-but-missing file (hoard walk).

        Files whose cached copy is stale are revalidated/refetched via
        the normal access path.  Unreachable servers abort the walk
        (the remaining files stay missing until the next walk).
        """
        fetched = 0
        for path in self.cache.hoarded_paths():
            entry = self.cache.get(path, touch=False)
            if entry is not None and (entry.has_callback or entry.dirty):
                continue
            yield from self.access(path)
            fetched += 1
        return fetched

    # -- cache administration -------------------------------------------------------------

    def flush(self, path: str) -> bool:
        """Evict a file (the experiments' 'flushed from the cache' setup)."""
        return self.cache.evict(path)

    def warm(self, path: str) -> None:
        """Populate the cache instantly (experiment setup, not simulation)."""
        authoritative = self.server.lookup(path)
        self.cache.insert(path, authoritative.size, authoritative.version)
        self.server.grant_callback(path, self.name)

    def warm_all(self, paths) -> None:
        for path in paths:
            self.warm(path)

    # -- server -> client callback channel ------------------------------------------------

    def _callback_broken(self, path: str) -> None:
        self.cache.invalidate(path)
