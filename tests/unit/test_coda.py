"""Unit tests for the Coda substrate (repro.coda)."""

import pytest

from repro.coda import (
    ChangeLog,
    CodaClient,
    DisconnectedError,
    FileCache,
    FileServer,
    REINTEGRATION_EFFICIENCY,
    volume_of,
)
from repro.network import Link, Network


class TestObjects:
    def test_volume_of(self):
        assert volume_of("/speech/lm.full") == "speech"
        assert volume_of("/latex-small/main.tex") == "latex-small"

    def test_volume_of_rejects_bad_paths(self):
        for bad in ("relative/path", "/", "/onlyvolume", "//x"):
            with pytest.raises(ValueError):
                volume_of(bad)

    def test_server_create_and_lookup(self, sim):
        server = FileServer(sim, "fs")
        server.create_file("/vol/a", 100)
        record = server.lookup("/vol/a")
        assert record.size == 100 and record.version == 1
        assert server.exists("/vol/a")
        assert not server.exists("/vol/b")

    def test_duplicate_create_rejected(self, sim):
        server = FileServer(sim, "fs")
        server.create_file("/vol/a", 100)
        with pytest.raises(FileExistsError):
            server.create_file("/vol/a", 100)

    def test_store_bumps_version(self, sim):
        server = FileServer(sim, "fs")
        server.create_file("/vol/a", 100)
        server.volume("vol").store("/vol/a", 150)
        record = server.lookup("/vol/a")
        assert record.size == 150 and record.version == 2


class TestFileCache:
    def test_insert_and_lookup(self):
        cache = FileCache(1000)
        cache.insert("/v/a", 300, version=1)
        assert "/v/a" in cache
        assert cache.used_bytes == 300

    def test_lru_eviction(self):
        cache = FileCache(1000)
        cache.insert("/v/a", 400, 1)
        cache.insert("/v/b", 400, 1)
        cache.get("/v/a")  # touch: a becomes MRU
        cache.insert("/v/c", 400, 1)  # evicts b
        assert "/v/a" in cache and "/v/c" in cache
        assert "/v/b" not in cache
        assert cache.evictions == 1

    def test_dirty_entries_pinned(self):
        cache = FileCache(1000)
        cache.insert("/v/a", 600, 1)
        cache.mark_dirty("/v/a", 600)
        with pytest.raises(RuntimeError):
            cache.insert("/v/b", 600, 1)  # cannot evict dirty a
        with pytest.raises(RuntimeError):
            cache.evict("/v/a")

    def test_oversized_file_rejected(self):
        cache = FileCache(100)
        with pytest.raises(ValueError):
            cache.insert("/v/huge", 200, 1)

    def test_mark_dirty_resizes(self):
        cache = FileCache(1000)
        cache.insert("/v/a", 100, 1)
        cache.mark_dirty("/v/a", 250)
        assert cache.used_bytes == 250

    def test_mark_clean_restores_evictability(self):
        cache = FileCache(1000)
        cache.insert("/v/a", 100, 1)
        cache.mark_dirty("/v/a", 100)
        cache.mark_clean("/v/a", version=2)
        assert cache.evict("/v/a")
        assert cache.used_bytes == 0

    def test_invalidate_keeps_entry(self):
        cache = FileCache(1000)
        cache.insert("/v/a", 100, 1)
        cache.invalidate("/v/a")
        entry = cache.get("/v/a")
        assert entry is not None and not entry.has_callback

    def test_dirty_uncached_rejected(self):
        with pytest.raises(KeyError):
            FileCache(100).mark_dirty("/v/ghost", 10)


class TestChangeLog:
    def test_stores_coalesce_per_path(self):
        cml = ChangeLog()
        cml.log_store("/v/a", 100, now=1.0)
        cml.log_store("/v/a", 300, now=2.0)
        assert len(cml) == 1
        records = cml.records_for("v")
        assert records[0].size == 300

    def test_pending_bytes_include_overhead(self):
        cml = ChangeLog()
        cml.log_store("/v/a", 100, 0.0)
        cml.log_store("/v/b", 200, 0.0)
        expected = 300 + 2 * ChangeLog.RECORD_OVERHEAD_BYTES
        assert cml.pending_bytes("v") == expected
        assert cml.total_pending_bytes() == expected

    def test_volume_separation(self):
        cml = ChangeLog()
        cml.log_store("/v1/a", 100, 0.0)
        cml.log_store("/v2/b", 200, 0.0)
        assert cml.dirty_volumes() == ["v1", "v2"]
        cml.clear_volume("v1")
        assert cml.dirty_volumes() == ["v2"]
        assert not cml.has_pending("/v1/a")
        assert cml.has_pending("/v2/b")


@pytest.fixture
def coda_setup(sim):
    network = Network(sim)
    network.register_host("client")
    network.register_host("fs")
    network.connect("client", "fs", Link(sim, 10_000.0, 0.01))
    server = FileServer(sim, "fs")
    server.create_file("/vol/data", 5_000)
    client = CodaClient(sim, "client", server, network,
                        cache_capacity_bytes=100_000)
    return network, server, client


class TestCodaClient:
    def test_miss_fetches_whole_file(self, sim, coda_setup):
        _net, _server, client = coda_setup

        def op():
            record = yield from client.access("/vol/data")
            return record

        record = sim.run_process(op())
        assert not record.hit
        # 0.01 latency + 5000/10000 serialization
        assert sim.now == pytest.approx(0.51)
        assert client.is_cached("/vol/data")

    def test_hit_is_free(self, sim, coda_setup):
        _net, _server, client = coda_setup
        client.warm("/vol/data")

        def op():
            return (yield from client.access("/vol/data"))

        record = sim.run_process(op())
        assert record.hit and sim.now == 0.0

    def test_missing_file_raises(self, sim, coda_setup):
        _net, _server, client = coda_setup

        def op():
            yield from client.access("/vol/ghost")

        with pytest.raises(FileNotFoundError):
            sim.run_process(op())

    def test_disconnected_miss_raises(self, sim, coda_setup):
        net, _server, client = coda_setup
        net.disconnect("client", "fs")

        def op():
            yield from client.access("/vol/data")

        with pytest.raises(DisconnectedError):
            sim.run_process(op())

    def test_disconnected_hit_still_works(self, sim, coda_setup):
        net, _server, client = coda_setup
        client.warm("/vol/data")
        net.disconnect("client", "fs")

        def op():
            return (yield from client.access("/vol/data"))

        assert sim.run_process(op()).hit

    def test_strongly_connected_write_through(self, sim, coda_setup):
        _net, server, client = coda_setup
        client.warm("/vol/data")

        def op():
            yield from client.modify("/vol/data", 6_000)

        sim.run_process(op())
        assert server.lookup("/vol/data").size == 6_000
        assert client.dirty_volumes() == []

    def test_weakly_connected_buffers(self, sim, coda_setup):
        _net, server, client = coda_setup
        client.weakly_connected = True
        client.warm("/vol/data")

        def op():
            yield from client.modify("/vol/data", 6_000)

        sim.run_process(op())
        # Invisible on the server until reintegration.
        assert server.lookup("/vol/data").size == 5_000
        assert client.dirty_volumes() == ["vol"]
        assert client.has_pending_store("/vol/data")

        def sync():
            yield from client.reintegrate_all()

        sim.run_process(sync())
        assert server.lookup("/vol/data").size == 6_000
        assert client.dirty_volumes() == []

    def test_reintegration_pays_efficiency_penalty(self, sim, coda_setup):
        _net, _server, client = coda_setup
        client.weakly_connected = True
        client.warm("/vol/data")

        def op():
            yield from client.modify("/vol/data", 5_000)
            start = sim.now
            yield from client.reintegrate_volume("vol")
            return sim.now - start

        elapsed = sim.run_process(op())
        logical = 5_000 + ChangeLog.RECORD_OVERHEAD_BYTES
        expected = 0.01 + (logical / REINTEGRATION_EFFICIENCY) / 10_000.0
        assert elapsed == pytest.approx(expected, rel=1e-3)

    def test_callback_break_invalidates_other_clients(self, sim, coda_setup):
        net, server, client = coda_setup
        net.register_host("other")
        net.connect("other", "fs", Link(sim, 10_000.0, 0.01))
        other = CodaClient(sim, "other", server, net)
        client.warm("/vol/data")
        other.warm("/vol/data")

        def op():
            yield from client.modify("/vol/data", 7_000)

        sim.run_process(op())
        # other's copy is stale now.
        assert not other.is_cached("/vol/data")

        def reread():
            return (yield from other.access("/vol/data"))

        record = sim.run_process(reread())
        assert record.size == 7_000

    def test_revalidation_regains_callback_cheaply(self, sim, coda_setup):
        _net, server, client = coda_setup
        client.warm("/vol/data")
        client.cache.invalidate("/vol/data")  # stale but unchanged

        def op():
            return (yield from client.access("/vol/data"))

        record = sim.run_process(op())
        assert record.hit
        # Only the tiny validation RPC travelled, not the 5 KB file.
        assert sim.now < 0.1
        assert client.is_cached("/vol/data")

    def test_cached_files_excludes_stale(self, sim, coda_setup):
        _net, _server, client = coda_setup
        client.warm("/vol/data")
        assert dict(client.cached_files()) == {"/vol/data": 5_000}
        client.cache.invalidate("/vol/data")
        assert client.cached_files() == []

    def test_fetch_rate_estimate(self, sim, coda_setup):
        net, _server, client = coda_setup
        rate = client.fetch_rate_estimate()
        assert 0 < rate <= 10_000.0
        net.disconnect("client", "fs")
        assert client.fetch_rate_estimate() == 0.0

    def test_access_log_slicing(self, sim, coda_setup):
        _net, _server, client = coda_setup
        client.warm("/vol/data")
        mark = client.access_log_mark()

        def op():
            yield from client.access("/vol/data")

        sim.run_process(op())
        accesses = client.accesses_since(mark)
        assert [a.path for a in accesses] == ["/vol/data"]

    def test_flush(self, sim, coda_setup):
        _net, _server, client = coda_setup
        client.warm("/vol/data")
        assert client.flush("/vol/data")
        assert not client.is_cached("/vol/data")
        assert not client.flush("/vol/data")  # second flush: nothing there
