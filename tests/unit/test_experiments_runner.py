"""Unit tests for the experiment runner helpers and renderers."""

import pytest

from repro.core import OperationSpec, local_plan, remote_plan
from repro.core.plans import Alternative
from repro.experiments.report import (
    render_bar_figure,
    render_overhead_table,
    render_rank_figure,
)
from repro.experiments.overhead import OverheadRow
from repro.experiments.runner import (
    AltMeasurement,
    ScenarioResult,
    SpectraMeasurement,
    best_measurement,
    rank_percentile,
    relative_utility,
    score_measurement,
    utility_of,
)
from repro.odyssey import FidelitySpec


@pytest.fixture
def spec():
    return OperationSpec(
        "op", (local_plan(), remote_plan()),
        FidelitySpec.single("q", ("hi", "lo")),
        fidelity_desirability=lambda p: 1.0 if p["q"] == "hi" else 0.5,
    )


def measurement(spec, plan="local", server=None, q="hi",
                time_s=1.0, energy_j=1.0, feasible=True):
    alternative = Alternative.build(spec.plan(plan), server, {"q": q})
    return AltMeasurement(alternative=alternative, time_s=time_s,
                          energy_j=energy_j, feasible=feasible)


class TestScoring:
    def test_utility_of_matches_default_utility(self, spec):
        m = measurement(spec, time_s=2.0)
        # c=0: utility = (1/T) * fidelity
        assert utility_of(spec, 0.0, 2.0, 1.0, m.alternative) == (
            pytest.approx(0.5)
        )

    def test_infeasible_scores_minus_inf(self, spec):
        m = measurement(spec, feasible=False)
        assert score_measurement(spec, 0.0, m) == float("-inf")

    def test_best_measurement_prefers_high_utility(self, spec):
        slow = measurement(spec, time_s=10.0)
        fast = measurement(spec, plan="remote", server="s", time_s=1.0)
        best, score = best_measurement(spec, 0.0, [slow, fast])
        assert best is fast
        assert score == pytest.approx(1.0)

    def test_best_measurement_requires_feasible(self, spec):
        with pytest.raises(ValueError):
            best_measurement(spec, 0.0, [measurement(spec, feasible=False)])


class TestRanking:
    def test_percentile_of_best_is_99(self, spec):
        best = measurement(spec, plan="remote", server="s", time_s=1.0)
        worst = measurement(spec, time_s=10.0)
        pct = rank_percentile(spec, 0.0, [best, worst], best.alternative)
        assert pct == pytest.approx(99.0)

    def test_percentile_of_worst_is_half(self, spec):
        best = measurement(spec, plan="remote", server="s", time_s=1.0)
        worst = measurement(spec, time_s=10.0)
        pct = rank_percentile(spec, 0.0, [best, worst], worst.alternative)
        assert pct == pytest.approx(49.5)

    def test_unmeasured_choice_rejected(self, spec):
        m = measurement(spec)
        ghost = Alternative.build(spec.plan("remote"), "s", {"q": "lo"})
        with pytest.raises(ValueError):
            rank_percentile(spec, 0.0, [m], ghost)

    def test_relative_utility_with_overhead(self, spec):
        best = measurement(spec, plan="remote", server="s", time_s=1.0)
        worst = measurement(spec, time_s=10.0)
        # Spectra chose best but paid 25% overhead.
        spectra = SpectraMeasurement(choice=best.alternative,
                                     time_s=1.25, energy_j=1.0)
        rel = relative_utility(spec, 0.0, [best, worst], spectra)
        assert rel == pytest.approx(0.8)


class TestScenarioResult:
    def make_result(self, spec):
        best = measurement(spec, plan="remote", server="s", time_s=1.0)
        worst = measurement(spec, time_s=4.0)
        spectra = SpectraMeasurement(choice=best.alternative,
                                     time_s=1.05, energy_j=1.0)
        return ScenarioResult(
            scenario="test", measurements=[best, worst], spectra=spectra,
        )

    def test_accessors(self, spec):
        result = self.make_result(spec)
        assert "remote@s" in result.best_label(spec)
        assert result.percentile(spec) == pytest.approx(99.0)
        assert result.relative_utility(spec) == pytest.approx(1 / 1.05,
                                                              rel=1e-6)


class TestRenderers:
    def test_bar_figure_marks_spectra_choice(self, spec):
        result = TestScenarioResult().make_result(spec)
        text = render_bar_figure("Test figure", spec, {"test": result})
        assert "Test figure" in text
        assert "S->" in text
        assert "percentile=99" in text

    def test_bar_figure_energy_metric(self, spec):
        result = TestScenarioResult().make_result(spec)
        text = render_bar_figure("E", spec, {"test": result},
                                 metric="energy")
        assert "J" in text

    def test_bar_figure_infeasible_rendered_as_na(self, spec):
        infeasible = measurement(spec, feasible=False,
                                 time_s=float("inf"),
                                 energy_j=float("inf"))
        ok = measurement(spec, plan="remote", server="s", time_s=1.0)
        result = ScenarioResult(
            scenario="x", measurements=[ok, infeasible],
            spectra=SpectraMeasurement(choice=ok.alternative,
                                       time_s=1.0, energy_j=1.0),
        )
        assert "n/a" in render_bar_figure("T", spec, {"x": result})

    def test_rank_figure_reports_average(self, spec):
        result = TestScenarioResult().make_result(spec)
        text = render_rank_figure("Ranks", spec, {("test", 5): result})
        assert "average relative utility" in text

    def test_overhead_table_layout(self):
        row = OverheadRow(
            n_servers=0, register=0.0012, begin_total=0.0083,
            file_cache_prediction=0.0052, choosing=0.0004,
            begin_other=0.0027, do_local_op=0.0059, end=0.0021,
        )
        text = render_overhead_table([row], full_cache_ms=359.6)
        assert "0 servers" in text
        assert "359.6" in text
        assert "total" in text
