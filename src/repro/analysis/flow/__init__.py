"""Whole-program flow analysis: the ``--deep`` layer of ``repro lint``.

Where the SPC0xx pack checks one file at a time, this package builds a
project-wide view — a module/def/call-edge index
(:mod:`.project`), per-function control-flow graphs with exception
edges (:mod:`.cfg`) — and runs interprocedural passes over it:

| Code   | Invariant                                                     |
|--------|---------------------------------------------------------------|
| SPC101 | no decision-path entry point transitively reaches a           |
|        | nondeterminism source (wall clock, global RNG, environment)   |
| SPC102 | span/monitor begins end on *every* CFG path, exception        |
|        | edges included (the leak-on-raise shape SPC003 cannot see)    |
| SPC103 | acquire/release-style resource pairs close on every CFG path  |
| SPC104 | telemetry counter/span names at call sites resolve against    |
|        | the registered-name contract (`repro.telemetry.names`)        |
| SPC105 | `# spectra: noqa[CODE]` waivers that suppress nothing are     |
|        | themselves findings (dead waivers can't accumulate)           |

Importing this package registers the pack with the shared rule
registry; the rules only run under ``repro lint --deep``.
"""

from . import (  # noqa: F401  (imported for registration side effect)
    contracts,
    lifecycle,
    suppress,
    taint,
)
from .cfg import CFG, build_cfg
from .project import FunctionInfo, ModuleInfo, ProjectIndex

__all__ = [
    "CFG",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "build_cfg",
    "contracts",
    "lifecycle",
    "suppress",
    "taint",
]
