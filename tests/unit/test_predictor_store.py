"""Unit tests for the predictor store (repro.predictors.store)."""

import json

import pytest

from repro.predictors import (
    OperationDemandPredictor,
    PredictorStore,
    PredictorStoreError,
    STORE_SCHEMA,
    merge_logs,
    rebuild_predictor,
)
from repro.predictors.store import _encode_name, document_digest
from repro.telemetry import Telemetry


def make_predictor(n=6, plan="local"):
    predictor = OperationDemandPredictor(feature_names=["x"])
    for i in range(n):
        predictor.observe_operation(
            timestamp=float(i),
            discrete={"plan": plan, "vocab": ("full", i % 2)},
            continuous={"x": 1.0 + i},
            usage={"cpu:local": 100.0 + 10.0 * i, "net:bytes": 50.0 * i},
            file_accesses={"/v/lm": 1000},
            data_object="doc" if i % 2 else None,
        )
    return predictor


class TestRoundTrip:
    def test_save_load_preserves_log_and_config(self, tmp_path):
        store = PredictorStore(tmp_path)
        predictor = make_predictor()
        digest = store.save("op", predictor)
        stored = store.load("op")
        assert stored is not None
        assert stored.operation == "op"
        assert stored.digest == digest
        assert stored.feature_names == ("x",)
        assert stored.decay == predictor.decay
        assert stored.window == predictor.window
        assert stored.log.samples() == predictor.log.samples()
        assert store.load_document("op")["schema"] == STORE_SCHEMA

    def test_save_is_digest_stable(self, tmp_path):
        store = PredictorStore(tmp_path)
        predictor = make_predictor()
        assert store.save("op", predictor) == store.save("op", predictor)

    def test_rebuilt_predictor_predicts_identically(self, tmp_path):
        store = PredictorStore(tmp_path)
        predictor = make_predictor()
        store.save("op", predictor)
        rebuilt = rebuild_predictor(store.load("op"))
        context = {"plan": "local", "vocab": ("full", 1)}
        for resource in ("cpu:local", "net:bytes"):
            assert rebuilt.predict(resource, context, {"x": 3.0}) == \
                predictor.predict(resource, context, {"x": 3.0})

    def test_missing_document_is_plain_cold_start(self, tmp_path):
        telemetry = Telemetry()
        store = PredictorStore(tmp_path, telemetry=telemetry)
        assert store.load("never-saved") is None
        assert telemetry.metrics.counter(
            "spectra.predictors.store.errors").value == 0

    def test_operation_names_are_filesystem_safe(self, tmp_path):
        store = PredictorStore(tmp_path)
        name = "op/with:odd charsé"
        store.save(name, make_predictor(n=2))
        assert store.operations() == [name]
        assert store.load(name).operation == name
        # the encoded path stays inside the store directory
        assert store.path_for(name).parent == store.root

    def test_encode_name_injective_on_distinct_names(self):
        names = ["a/b", "a%2fb", "a.b", "a_b", "a b"]
        assert len({_encode_name(n) for n in names}) == len(names)


class TestCorruptionRecovery:
    def setup_store(self, tmp_path):
        telemetry = Telemetry()
        store = PredictorStore(tmp_path, telemetry=telemetry)
        store.save("op", make_predictor())
        return store, telemetry

    def errors(self, telemetry):
        return telemetry.metrics.counter(
            "spectra.predictors.store.errors").value

    def test_corrupt_json_degrades_to_cold_start(self, tmp_path):
        store, telemetry = self.setup_store(tmp_path)
        store.path_for("op").write_text("{not json at all")
        assert store.load("op") is None
        assert self.errors(telemetry) == 1

    def test_truncated_document_degrades_to_cold_start(self, tmp_path):
        store, telemetry = self.setup_store(tmp_path)
        path = store.path_for("op")
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.load("op") is None
        assert self.errors(telemetry) == 1

    def test_schema_bump_degrades_to_cold_start(self, tmp_path):
        store, telemetry = self.setup_store(tmp_path)
        path = store.path_for("op")
        document = json.loads(path.read_text())
        document["schema"] = "spectra-predictor-store/99"
        path.write_text(json.dumps(document))
        assert store.load("op") is None
        assert self.errors(telemetry) == 1

    def test_tampered_body_fails_integrity_check(self, tmp_path):
        store, telemetry = self.setup_store(tmp_path)
        path = store.path_for("op")
        document = json.loads(path.read_text())
        document["log"]["samples"][0]["usage"][0][1] += 1.0
        path.write_text(json.dumps(document))
        assert store.load("op") is None
        assert self.errors(telemetry) == 1

    def test_load_document_is_loud(self, tmp_path):
        store, _telemetry = self.setup_store(tmp_path)
        store.path_for("op").write_text("[]")
        with pytest.raises(PredictorStoreError):
            store.load_document("op")
        with pytest.raises(PredictorStoreError):
            store.load_document("missing")

    def test_successful_load_counts_loads_not_errors(self, tmp_path):
        store, telemetry = self.setup_store(tmp_path)
        assert store.load("op") is not None
        assert telemetry.metrics.counter(
            "spectra.predictors.store.loads").value == 1
        assert self.errors(telemetry) == 0

    def test_operations_skips_corrupt_documents(self, tmp_path):
        store, _telemetry = self.setup_store(tmp_path)
        (store.root / "junk.json").write_text("%%%")
        assert store.operations() == ["op"]


class TestAtomicity:
    def test_no_temp_files_left_behind(self, tmp_path):
        store = PredictorStore(tmp_path)
        store.save("op", make_predictor())
        assert not list(store.root.glob("*.tmp"))

    def test_rewrite_replaces_in_place(self, tmp_path):
        store = PredictorStore(tmp_path)
        store.save("op", make_predictor(n=2))
        first = store.load("op").n_samples
        store.save("op", make_predictor(n=5))
        assert first == 2
        assert store.load("op").n_samples == 5
        assert len(list(store.root.glob("*.json"))) == 1


class TestDigests:
    def test_document_digest_is_order_insensitive(self):
        a = {"x": 1, "y": [1, 2]}
        b = {"y": [1, 2], "x": 1}
        assert document_digest(a) == document_digest(b)

    def test_state_digest_tracks_content(self, tmp_path):
        store = PredictorStore(tmp_path)
        empty = store.state_digest()
        store.save("op", make_predictor(n=2))
        two = store.state_digest()
        store.save("op", make_predictor(n=3))
        assert empty != two != store.state_digest()

    def test_state_digest_is_path_independent(self, tmp_path):
        a = PredictorStore(tmp_path / "a")
        b = PredictorStore(tmp_path / "somewhere" / "else")
        a.save("op", make_predictor())
        b.save("op", make_predictor())
        assert a.state_digest() == b.state_digest()


class TestMerge:
    def test_merge_into_empty_copies_wholesale(self, tmp_path):
        source = PredictorStore(tmp_path / "src")
        dest = PredictorStore(tmp_path / "dst")
        source.save("op", make_predictor())
        merged = dest.merge(source)
        assert merged == {"op": 6}
        assert dest.state_digest() == source.state_digest()

    def test_merge_is_idempotent(self, tmp_path):
        source = PredictorStore(tmp_path / "src")
        dest = PredictorStore(tmp_path / "dst")
        source.save("op", make_predictor())
        dest.merge(source)
        once = dest.state_digest()
        dest.merge(source)
        assert dest.state_digest() == once

    def test_merge_self_is_identity(self, tmp_path):
        store = PredictorStore(tmp_path)
        store.save("op", make_predictor())
        before = store.state_digest()
        store.merge(store)
        assert store.state_digest() == before

    def test_merge_order_does_not_matter(self, tmp_path):
        a = PredictorStore(tmp_path / "a")
        b = PredictorStore(tmp_path / "b")
        a.save("op", make_predictor(n=3, plan="local"))
        b.save("op", make_predictor(n=5, plan="remote"))
        ab = PredictorStore(tmp_path / "ab")
        ba = PredictorStore(tmp_path / "ba")
        ab.merge(a)
        ab.merge(b)
        ba.merge(b)
        ba.merge(a)
        ab_log = ab.load("op").log.samples()
        ba_log = ba.load("op").log.samples()
        assert ab_log == ba_log
        assert len(ab_log) == 8

    def test_merge_logs_dedupes_exact_duplicates(self):
        log = make_predictor(n=4).log
        union = merge_logs(log, log)
        assert union.samples() == log.samples()

    def test_merge_logs_bounds_keep_newest(self):
        a = make_predictor(n=6).log
        union = merge_logs(a, make_predictor(n=6, plan="remote").log,
                           max_samples=4)
        assert len(union) == 4
        assert max(s.timestamp for s in a) in {
            s.timestamp for s in union
        }


class TestScoping:
    def test_scoped_stores_are_disjoint(self, tmp_path):
        root = PredictorStore(tmp_path)
        root.scoped("alice").save("op", make_predictor(n=2))
        root.scoped("bob").save("op", make_predictor(n=5))
        assert root.scoped("alice").load("op").n_samples == 2
        assert root.scoped("bob").load("op").n_samples == 5
        assert root.operations() == []
