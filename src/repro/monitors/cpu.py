"""The CPU monitor (paper §3.3.1).

Supply: "predicts availability using a smoothed estimate of recent load
... calculates the percentage of cycles available for operation execution
by assuming that background load will remain unchanged and that the
operation will get a fair share of the CPU.  It multiplies this value by
the processor speed to predict the cycles per second the operation will
receive."

Demand: "observes CPU usage by associating an operation with the
identifier of the executing process ... Before and after execution, the
monitor observes CPU statistics for the executing process and its
children using Linux's /proc file system."  Our simulated CPU keeps
per-owner cycle counters that play the role of ``/proc``.
"""

from __future__ import annotations

from typing import Optional

from ..hosts import Host
from .base import OperationRecording, ResourceMonitor
from .snapshot import ResourceSnapshot


class LocalCPUMonitor(ResourceMonitor):
    """Measures the client's own processor."""

    name = "cpu"

    #: resource key this monitor reports demand under
    RESOURCE = "cpu:local"

    def __init__(self, host: Host):
        self._host = host

    def predict_avail(self, snapshot: ResourceSnapshot,
                      server_name: Optional[str] = None) -> None:
        if server_name is not None:
            return  # remote CPUs are the proxy monitors' business
        snapshot.local_cpu_rate_cps = self._host.cpu.predicted_rate_for_new_job()

    def start_op(self, recording: OperationRecording) -> None:
        recording.marks[self.name] = self._host.cpu.cycles_used_by(recording.owner)

    def stop_op(self, recording: OperationRecording) -> None:
        start = recording.marks.get(self.name)
        if start is None:
            raise RuntimeError("cpu monitor stop_op without start_op")
        used = self._host.cpu.cycles_used_by(recording.owner) - start
        recording.usage[self.RESOURCE] = recording.usage.get(self.RESOURCE, 0.0) + used


class ServerCPUMonitor(ResourceMonitor):
    """Runs on a Spectra *server*: measures service CPU usage there.

    Its measurements travel back to clients inside RPC usage reports; the
    client-side accumulation is handled by the remote proxy monitor.
    """

    name = "cpu"

    RESOURCE = "cpu:remote"

    def __init__(self, host: Host):
        self._host = host

    def availability(self) -> float:
        """Predicted cycles/second for a newly arriving service job."""
        return self._host.cpu.predicted_rate_for_new_job()

    def start_op(self, recording: OperationRecording) -> None:
        recording.marks[f"{self.name}@{self._host.name}"] = (
            self._host.cpu.cycles_used_by(recording.owner)
        )

    def stop_op(self, recording: OperationRecording) -> None:
        key = f"{self.name}@{self._host.name}"
        start = recording.marks.get(key)
        if start is None:
            raise RuntimeError("server cpu monitor stop_op without start_op")
        used = self._host.cpu.cycles_used_by(recording.owner) - start
        recording.usage[self.RESOURCE] = recording.usage.get(self.RESOURCE, 0.0) + used
