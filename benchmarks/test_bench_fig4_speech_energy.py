"""Figure 4: speech recognition energy usage.

The energy companion to Figure 3: client-side joules per alternative in
the battery-powered energy scenario, plus the shape claim that drives
the scenario's decision — the hybrid plan is faster but hungrier than
remote, so an energy-conscious Spectra goes remote at full fidelity.
"""

import pytest

from repro.apps import make_speech_spec
from repro.experiments import render_bar_figure, run_speech_experiment

from conftest import cached, save_figure

spec = make_speech_spec()


def _speech_results():
    return cached("speech", run_speech_experiment)


@pytest.mark.benchmark(group="figures")
def test_fig4_speech_energy(benchmark, results_dir):
    results = benchmark.pedantic(_speech_results, rounds=1, iterations=1)
    energy = results["energy"]

    save_figure(results_dir, "fig4_speech_energy", render_bar_figure(
        "Figure 4: Speech recognition energy usage (joules, "
        "energy scenario)",
        spec, {"energy": energy}, metric="energy",
    ))

    joules = {m.label: m.energy_j for m in energy.measurements}
    times = {m.label: m.time_s for m in energy.measurements}

    # "Although hybrid execution takes less time, it consumes more
    # energy because a portion of the computation is done on the client."
    assert times["hybrid@t20 [vocab=full]"] < times["remote@t20 [vocab=full]"]
    assert joules["hybrid@t20 [vocab=full]"] > joules["remote@t20 [vocab=full]"]

    # Local execution is an energy disaster on the FPU-less Itsy.
    assert joules["local [vocab=full]"] > 5 * joules["remote@t20 [vocab=full]"]

    # "Spectra correctly chooses to avoid the reduced vocabulary — the
    # small energy and latency benefits do not outweigh the decrease in
    # fidelity."
    choice = energy.spectra.choice
    assert choice.plan.name == "remote"
    assert choice.fidelity_dict()["vocab"] == "full"
    assert energy.relative_utility(spec) >= 0.9
