"""The Latex experiment — Figures 5, 6, and 7 (§4.2).

Four scenarios on the 560X / server-A / server-B testbed, for a 14-page
and a 123-page document:

``baseline``     everything unloaded and wall-powered; input files
                 cached on every machine → CPU speed decides (B wins).
``filecache``    server B's Coda cache holds none of the input files →
                 B pays fetches from the file server; A wins.
``reintegrate``  the client is weakly connected and has edited the small
                 document's 70 KB main input (earlier local runs also
                 left dirty outputs in that volume).  Remote execution
                 must first reintegrate the volume over the wireless
                 network → local wins for the small document; the large
                 document's volume is clean, so B still wins there.
``energy``       the reintegrate scenario on battery power with a very
                 aggressive lifetime goal → B wins even for the small
                 document, because it uses slightly less client energy
                 despite taking longer.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..apps import (
    LARGE_DOCUMENT,
    SMALL_DOCUMENT,
    LatexApplication,
    LatexService,
    LatexWorkload,
    install_document,
    warm_document,
)
from ..testbeds import ThinkpadTestbed
from .runner import AltMeasurement, ScenarioResult, SpectraMeasurement

SCENARIOS = ("baseline", "filecache", "reintegrate", "energy")
DOCUMENTS = {"small": SMALL_DOCUMENT, "large": LARGE_DOCUMENT}

#: Pinned energy importance for the energy scenario ("a very aggressive
#: goal for battery lifetime is specified").
ENERGY_SCENARIO_C = 0.6

#: The edited input's new size in the reintegrate scenario (the paper's
#: "70 KB input file ... is modified").
MODIFIED_INPUT_BYTES = 70 * 1024


def _build(scenario: str, solver=None, telemetry=None
           ) -> Tuple[ThinkpadTestbed, LatexApplication]:
    """Fresh trained testbed with the scenario applied."""
    bed = ThinkpadTestbed(solver=solver, telemetry=telemetry)
    documents = dict(DOCUMENTS)
    for doc in documents.values():
        install_document(bed.fileserver, doc)
        for node in (bed.thinkpad, bed.server_a, bed.server_b):
            warm_document(node.coda, doc, outputs=True)

    for node in (bed.thinkpad, bed.server_a, bed.server_b):
        node.register_service(LatexService(documents))

    bed.poll()
    app = LatexApplication(bed.client, documents)
    bed.sim.run_process(app.register())

    # Training: 20 runs alternating documents, forced round-robin over
    # the three placements so every bin and both data-specific models
    # gather samples ("We first executed Latex 20 times...").
    placements = app.spec.alternatives(["server-a", "server-b"])
    for i, doc_name in enumerate(LatexWorkload().training(20)):
        forced = placements[i % len(placements)]
        bed.sim.run_process(app.format(doc_name, force=forced))
    # Training runs at baseline connectivity: any outputs written remain
    # reintegrated (strong consistency), so the CML starts clean.

    # Let transient load estimates decay and refresh server status
    # before the scenario starts (the paper's phases were minutes
    # apart in wall-clock time).
    bed.sim.advance(30.0)
    bed.poll()

    _apply_scenario(bed, app, scenario)
    return bed, app


def _apply_scenario(bed: ThinkpadTestbed, app: LatexApplication,
                    scenario: str) -> None:
    if scenario == "baseline":
        return
    if scenario == "filecache":
        # Server B loses every input file of both documents.
        for doc in DOCUMENTS.values():
            for path, _size in doc.input_paths():
                if bed.server_b.coda.is_cached(path):
                    bed.server_b.coda.flush(path)
        bed.poll()  # the client's proxy must see B's cold cache
        return
    if scenario in ("reintegrate", "energy"):
        # Weak connectivity: stores now buffer in the CML.
        bed.set_client_weakly_connected(True)
        # Earlier local runs left dirty outputs in the small volume...
        local = next(a for a in app.spec.alternatives([])
                     if a.plan.name == "local")
        bed.sim.run_process(app.format("small", force=local))
        # ...and the user edits the 70 KB top-level input.
        bed.sim.run_process(
            bed.thinkpad.coda.modify(SMALL_DOCUMENT.main_input,
                                     MODIFIED_INPUT_BYTES)
        )
        if scenario == "energy":
            bed.set_energy_importance(ENERGY_SCENARIO_C)
        bed.poll()
        return
    raise ValueError(f"unknown latex scenario {scenario!r}")


def scenario_energy_importance(scenario: str) -> float:
    return ENERGY_SCENARIO_C if scenario == "energy" else 0.0


def run_latex_scenario(scenario: str, document: str,
                       solver=None) -> ScenarioResult:
    """Measure the three placements + Spectra's pick for one cell."""
    reference = _build(scenario, solver=solver)[1].spec.alternatives(
        ["server-a", "server-b"]
    )

    measurements: List[AltMeasurement] = []
    for alternative in reference:
        bed, app = _build(scenario, solver=solver)
        e0 = bed.thinkpad.host.energy_consumed_joules()
        try:
            report = bed.sim.run_process(
                app.format(document, force=alternative)
            )
        except Exception:
            measurements.append(AltMeasurement(
                alternative=alternative, time_s=float("inf"),
                energy_j=float("inf"), feasible=False,
            ))
            continue
        measurements.append(AltMeasurement(
            alternative=alternative,
            time_s=report.elapsed_s,
            energy_j=bed.thinkpad.host.energy_consumed_joules() - e0,
        ))

    bed, app = _build(scenario, solver=solver)
    e0 = bed.thinkpad.host.energy_consumed_joules()
    report = bed.sim.run_process(app.format(document))
    spectra = SpectraMeasurement(
        choice=report.alternative,
        time_s=report.elapsed_s,
        energy_j=bed.thinkpad.host.energy_consumed_joules() - e0,
        prediction=report.prediction,
    )

    return ScenarioResult(
        scenario=scenario,
        measurements=measurements,
        spectra=spectra,
        energy_importance=scenario_energy_importance(scenario),
        meta={"document": document},
    )


def run_latex_experiment(scenarios=SCENARIOS, documents=("small", "large"),
                         solver=None) -> Dict[Tuple[str, str], ScenarioResult]:
    """The full Figure 5/6/7 sweep: scenario × document."""
    return {
        (scenario, document): run_latex_scenario(scenario, document,
                                                 solver=solver)
        for scenario in scenarios
        for document in documents
    }
