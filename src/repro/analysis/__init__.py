"""Sim-safety static analysis: the invariants behind reproducibility.

Spectra's results are trustworthy only if every run is deterministic —
all time from the simulated kernel clock, all randomness from seeded
generators, every monitor/span lifecycle closed on every path.  This
package mechanically enforces those invariants with a small AST rule
engine (:mod:`.engine`), a registry of SPC rules (:mod:`.rules`), and a
``repro lint`` CLI (:mod:`.cli`).

Typical embedding::

    from repro.analysis import LintConfig, analyze_paths
    violations = analyze_paths(["src/repro", "tests"], LintConfig())

Inline suppression::

    value = legacy()  # spectra: noqa[SPC004] -- exact sentinel by design
"""

from .core import (
    INTERNAL_CODE,
    RULE_REGISTRY,
    SYNTAX_CODE,
    Rule,
    RuleConfig,
    Violation,
    all_rules,
    register_rule,
)
from .engine import (
    LintConfig,
    Project,
    analyze_file,
    analyze_paths,
    analyze_source,
    iter_python_files,
)
from .reporters import render_json, render_text
from . import rules  # noqa: F401  (registers the SPC rule pack)
from . import flow  # noqa: F401  (registers the SPC1xx deep pack)

__all__ = [
    "INTERNAL_CODE",
    "RULE_REGISTRY",
    "SYNTAX_CODE",
    "Rule",
    "RuleConfig",
    "Violation",
    "all_rules",
    "register_rule",
    "LintConfig",
    "Project",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "render_json",
    "render_text",
]
