"""Decision explanation: why did Spectra choose what it chose?

A production placement system that cannot explain itself is very hard
to trust or debug.  Two entry points:

:func:`explain_decision`
    Turns a live :class:`~repro.core.client.OperationHandle` into a
    human-readable account of one decision: the resource snapshot it
    saw, the top alternatives it weighed with their §3.6 time-component
    breakdowns, and the margin by which the winner won.

:func:`explain_trace`
    The same forensics over an **exported telemetry trace** — every
    decision of a whole run, reconstructed from the candidate lists the
    tracer embedded in each ``begin_fidelity_op`` span.  This is what
    makes post-hoc debugging work: the handles are long gone, the
    JSONL file is not.

Usage::

    handle = yield from client.begin_fidelity_op("speech-recognize", ...)
    ...
    print(explain_decision(handle))

    # afterwards, from a trace file:
    from repro.telemetry import load_jsonl, split_records
    spans, _ = split_records(load_jsonl("run.jsonl"))
    print(explain_trace(spans))
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..telemetry import fmt_rate, fmt_seconds
from .client import OperationHandle
from .utility import AlternativePrediction


def _snapshot_lines(handle: OperationHandle) -> List[str]:
    snapshot = handle.snapshot
    if snapshot is None:
        return ["  (no snapshot recorded)"]
    lines = [
        f"  local CPU: {fmt_rate(snapshot.local_cpu_rate_cps)}; "
        f"{len(snapshot.local_cache.cached_files)} files cached",
    ]
    battery = snapshot.battery
    if battery.remaining_joules is not None:
        lines.append(
            f"  battery: {battery.remaining_joules:.0f} J remaining, "
            f"energy importance c={battery.importance:.2f}"
        )
    else:
        lines.append("  battery: wall powered (c=0)")
    for server in sorted(snapshot.servers.values(), key=lambda s: s.name):
        if not server.reachable:
            lines.append(f"  server {server.name}: UNREACHABLE")
            continue
        lines.append(
            f"  server {server.name}: {fmt_rate(server.cpu_rate_cps)}, "
            f"{server.network.bandwidth_bps / 1000:.0f} kB/s @ "
            f"{server.network.latency_s * 1e3:.0f} ms, "
            f"{len(server.cache.cached_files)} files cached"
        )
    if snapshot.dirty_volumes:
        pending = ", ".join(
            f"{volume} ({nbytes / 1024:.0f} KB)"
            for volume, nbytes in sorted(snapshot.dirty_volumes.items())
        )
        lines.append(f"  dirty Coda volumes awaiting reintegration: {pending}")
    return lines


def _prediction_line(prediction: AlternativePrediction,
                     utility: float, marker: str) -> str:
    if not prediction.feasible:
        return (f"  {marker} {prediction.alternative.describe():44s} "
                f"INFEASIBLE ({prediction.infeasible_reason})")
    comps = prediction.components
    breakdown = " + ".join(
        f"{key}={fmt_seconds(value)}"
        for key, value in comps.items() if value > 0
    ) or "negligible"
    return (f"  {marker} {prediction.alternative.describe():44s} "
            f"T={fmt_seconds(prediction.total_time_s):>8s} "
            f"E={prediction.energy_joules:6.2f}J "
            f"u={utility:.4f}\n        [{breakdown}]")


def explain_decision(handle: OperationHandle, top: int = 5) -> str:
    """Render a decision post-mortem for one operation handle.

    Shows the snapshot, the winning alternative, and the *top*
    runners-up by utility, each with its predicted time broken into the
    paper's components (local CPU, remote CPU, network, cache misses,
    consistency).
    """
    lines = [f"Decision for operation #{handle.opid} "
             f"({handle.spec.name}):"]

    if handle.forced:
        lines.append(f"  FORCED to {handle.alternative.describe()} "
                     "(no solver run)")
    elif handle.solver_result is None:
        lines.append(f"  EXPLORATION: {handle.alternative.describe()} "
                     "(untrained bin; gathering its first sample)")
    lines.append("resource snapshot:")
    lines.extend(_snapshot_lines(handle))

    result = handle.solver_result
    if result is not None and result.evaluated:
        ranked: List[Tuple[AlternativePrediction, float]] = sorted(
            result.evaluated, key=lambda pair: pair[1], reverse=True,
        )
        lines.append(
            f"alternatives considered ({result.evaluations} evaluated, "
            f"{result.visits} solver visits):"
        )
        shown = ranked[:top]
        for prediction, utility in shown:
            marker = ("->" if prediction.alternative == handle.alternative
                      else "  ")
            lines.append(_prediction_line(prediction, utility, marker))
        if len(ranked) > top:
            lines.append(f"     ... and {len(ranked) - top} more")
        if len(ranked) >= 2 and ranked[0][1] > 0:
            margin = ((ranked[0][1] - ranked[1][1]) / ranked[0][1])
            lines.append(f"winning margin over runner-up: {margin:.1%}")
    elif handle.prediction is not None:
        if result is not None:
            # The solver ran but was built without collect_evaluated:
            # the winner is known, the also-rans were never kept.
            lines.append(
                "chosen alternative (candidate diagnostics not collected; "
                "build the solver with collect_evaluated=True to rank "
                "alternatives):"
            )
            lines.append(_prediction_line(handle.prediction,
                                          result.utility, "->"))
        else:
            lines.append("prediction for the (forced) alternative:")
            lines.append(_prediction_line(handle.prediction,
                                          float("nan"), "->"))

    if handle.timings:
        timing = ", ".join(
            f"{key}={fmt_seconds(value)}"
            for key, value in handle.timings.items()
        )
        lines.append(f"decision overhead: {timing}")
    return "\n".join(lines)


# -- trace-driven forensics ---------------------------------------------------------


def _candidate_line(candidate: Dict[str, Any], marker: str) -> str:
    name = candidate.get("alternative", "?")
    if not candidate.get("feasible", True):
        reason = candidate.get("reason", "")
        return f"  {marker} {name:44s} INFEASIBLE ({reason})"
    return (f"  {marker} {name:44s} "
            f"T={fmt_seconds(candidate.get('time_s', 0.0)):>8s} "
            f"E={candidate.get('energy_j', 0.0):6.2f}J "
            f"u={candidate.get('utility', 0.0):.4f}")


def explain_trace_record(record: Dict[str, Any], top: int = 5) -> str:
    """Render one ``begin_fidelity_op`` span record as a decision account."""
    attrs = record.get("attrs", {})
    lines = [f"Decision for operation #{attrs.get('opid', '?')} "
             f"({attrs.get('operation', '?')}) "
             f"at t={record.get('start', 0.0):.3f}s:"]
    mode = attrs.get("mode", "?")
    chosen = attrs.get("alternative", "?")
    if mode == "forced":
        lines.append(f"  FORCED to {chosen} (no solver run)")
    elif mode == "explored":
        lines.append(f"  EXPLORATION: {chosen} "
                     "(untrained bin; gathering its first sample)")
    if "battery_importance" in attrs:
        lines.append(
            f"  context: energy importance c={attrs['battery_importance']:.2f}, "
            f"{attrs.get('reachable_servers', 0)} reachable server(s)"
        )
    candidates = attrs.get("candidates") or []
    if candidates:
        lines.append(
            f"alternatives considered ({attrs.get('evaluations', '?')} "
            f"evaluated, {attrs.get('visits', '?')} solver visits):"
        )
        for candidate in candidates[:top]:
            marker = "->" if candidate.get("alternative") == chosen else "  "
            lines.append(_candidate_line(candidate, marker))
        feasible = [c for c in candidates if c.get("feasible", True)]
        if len(feasible) >= 2 and feasible[0].get("utility", 0.0) > 0:
            margin = ((feasible[0]["utility"] - feasible[1]["utility"])
                      / feasible[0]["utility"])
            lines.append(f"winning margin over runner-up: {margin:.1%}")
    elif "predicted_time_s" in attrs:
        lines.append(
            f"  -> {chosen}: predicted "
            f"T={fmt_seconds(attrs['predicted_time_s'])}, "
            f"E={attrs.get('predicted_energy_j', 0.0):.2f}J"
        )
    lines.append(f"decision overhead: "
                 f"{fmt_seconds(record.get('duration', 0.0))}")
    return "\n".join(lines)


def explain_trace(spans: Sequence[Dict[str, Any]], top: int = 5,
                  operation: Optional[str] = None) -> str:
    """Decision forensics for *every* operation in a trace.

    *spans* are span records (dicts) from a telemetry JSONL export;
    pass ``operation`` to restrict to one registered operation name.
    """
    decisions = [
        record for record in spans
        if record.get("name") == "begin_fidelity_op"
        and (operation is None
             or record.get("attrs", {}).get("operation") == operation)
    ]
    if not decisions:
        return "(no begin_fidelity_op spans in trace)"
    return "\n\n".join(
        explain_trace_record(record, top=top) for record in decisions
    )
