"""Trace-driven decision forensics: replay a JSONL trace into answers.

Given the JSONL export of a traced run (``Telemetry.export_jsonl``),
this module reconstructs what the decision loop actually did:

* **where the time went** — per-operation and aggregate breakdowns of
  the ``begin_fidelity_op`` phases (the paper's Figure-10 methodology,
  applied to a whole workload instead of one null-op microbenchmark);
* **where the energy went** — measured joules per operation and per
  operation type;
* **how good the predictions were** — a prediction-vs-actual error
  table over every completed operation that carried a prediction, the
  run-level counterpart of the paper's §4 accuracy claims;
* **what the subsystems did** — RPC, solver, reintegration, and
  sim-kernel aggregates from spans and the metrics snapshot.

Everything operates on plain dict records, so forensics needs no live
simulator and imports nothing from the rest of the reproduction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .formatting import fmt_seconds, render_table

#: begin-phase rendering order (matches OperationHandle.timings)
PHASES = ("file_cache_prediction", "snapshot", "choosing", "consistency")


# -- loading ------------------------------------------------------------------------


def load_jsonl(path) -> List[Dict[str, Any]]:
    """Read one JSON record per non-empty line."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def split_records(
    records: Sequence[Dict[str, Any]],
) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    """Separate span records from the trailing metrics snapshot."""
    spans = [r for r in records if r.get("type") == "span"]
    metrics: Dict[str, Any] = {}
    for record in records:
        if record.get("type") == "metrics":
            metrics = record.get("metrics", {})
    return spans, metrics


# -- reconstruction -----------------------------------------------------------------


@dataclass
class OperationForensics:
    """Everything the trace says about one fidelity operation."""

    opid: int
    operation: str
    begin: Optional[Dict[str, Any]] = None
    end: Optional[Dict[str, Any]] = None
    aborted: bool = False
    phases: Dict[str, float] = field(default_factory=dict)
    rpcs: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def alternative(self) -> str:
        for record in (self.end, self.begin):
            if record is not None:
                alt = record["attrs"].get("alternative")
                if alt:
                    return alt
        return "?"

    @property
    def mode(self) -> str:
        if self.begin is None:
            return "?"
        return self.begin["attrs"].get("mode", "?")

    @property
    def overhead_s(self) -> Optional[float]:
        return self.begin["duration"] if self.begin is not None else None

    @property
    def elapsed_s(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end["attrs"].get("elapsed_s")

    @property
    def energy_j(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end["attrs"].get("energy_j")

    def prediction_error(self, metric: str) -> Optional[Tuple[float, float, float]]:
        """(predicted, actual, relative error) for ``time`` or ``energy``."""
        if self.end is None:
            return None
        attrs = self.end["attrs"]
        predicted = attrs.get(f"predicted_{'time_s' if metric == 'time' else 'energy_j'}")
        actual = attrs.get("elapsed_s" if metric == "time" else "energy_j")
        if predicted is None or actual is None:
            return None
        denominator = actual if abs(actual) > 1e-12 else 1e-12
        return predicted, actual, (predicted - actual) / denominator


def collect_operations(
    spans: Sequence[Dict[str, Any]],
) -> List[OperationForensics]:
    """Stitch begin/end/abort/phase/rpc spans into per-operation views."""
    ops: Dict[int, OperationForensics] = {}

    def op_for(record: Dict[str, Any]) -> Optional[OperationForensics]:
        opid = record["attrs"].get("opid")
        if opid is None:
            return None
        if opid not in ops:
            ops[opid] = OperationForensics(
                opid=opid, operation=record["attrs"].get("operation", "?"),
            )
        entry = ops[opid]
        if entry.operation == "?" and record["attrs"].get("operation"):
            entry.operation = record["attrs"]["operation"]
        return entry

    begin_ids: Dict[int, int] = {}  # begin span_id -> opid
    for record in spans:
        name = record["name"]
        if name == "begin_fidelity_op":
            entry = op_for(record)
            if entry is not None:
                entry.begin = record
                begin_ids[record["span_id"]] = entry.opid
        elif name == "end_fidelity_op":
            entry = op_for(record)
            if entry is not None:
                entry.end = record
        elif name == "abort_fidelity_op":
            entry = op_for(record)
            if entry is not None:
                entry.aborted = True

    # RPC spans attach only to known fidelity operations: control traffic
    # (server-status polls) draws opids from the same namespace but is
    # not an application operation.  Phase spans attach by parent
    # linkage — they carry no opid of their own.
    for record in spans:
        name = record["name"]
        if name == "rpc.call":
            opid = record["attrs"].get("opid")
            if opid in ops:
                ops[opid].rpcs.append(record)
        elif name.startswith("phase:"):
            opid = begin_ids.get(record.get("parent_id"))
            if opid is not None:
                phase = name.split(":", 1)[1]
                ops[opid].phases[phase] = record["duration"]

    return [ops[opid] for opid in sorted(ops)]


# -- rendering ----------------------------------------------------------------------


def _ms(value: Optional[float]) -> str:
    return f"{value * 1e3:.2f}" if value is not None else "-"


def render_operations_table(ops: Sequence[OperationForensics]) -> List[str]:
    rows = []
    for op in ops:
        status = "aborted" if op.aborted else ("ok" if op.end else "open")
        rows.append((
            f"#{op.opid} {op.operation}",
            op.alternative,
            op.mode,
            _ms(op.overhead_s),
            fmt_seconds(op.elapsed_s) if op.elapsed_s is not None else "-",
            f"{op.energy_j:.2f}" if op.energy_j is not None else "-",
            status,
        ))
    lines = ["Operations:"]
    lines += render_table(
        ("operation", "alternative", "decided by", "overhead ms",
         "elapsed", "energy J", "status"),
        rows,
    )
    return lines


def render_phase_breakdown(ops: Sequence[OperationForensics]) -> List[str]:
    """Aggregate Figure-10-style view: where decision time went."""
    with_begin = [op for op in ops if op.begin is not None]
    lines = [f"Decision-overhead breakdown "
             f"({len(with_begin)} begin_fidelity_op calls):"]
    if not with_begin:
        lines.append("  (no begin_fidelity_op spans in trace)")
        return lines
    total_overhead = sum(op.overhead_s or 0.0 for op in with_begin)
    rows = []
    for phase in PHASES:
        values = [op.phases[phase] for op in with_begin if phase in op.phases]
        if not values:
            continue
        subtotal = sum(values)
        share = subtotal / total_overhead if total_overhead > 0 else 0.0
        rows.append((phase, str(len(values)), f"{subtotal * 1e3:.2f}",
                     f"{subtotal / len(values) * 1e3:.3f}", f"{share:.1%}"))
    rows.append(("total", str(len(with_begin)), f"{total_overhead * 1e3:.2f}",
                 f"{total_overhead / len(with_begin) * 1e3:.3f}", "100.0%"))
    lines += render_table(
        ("phase", "calls", "total ms", "mean ms", "share"), rows)
    return lines


def render_time_energy_breakdown(
    ops: Sequence[OperationForensics],
) -> List[str]:
    """Per operation type: count, simulated time, and measured energy."""
    by_name: Dict[str, List[OperationForensics]] = {}
    for op in ops:
        if op.end is not None:
            by_name.setdefault(op.operation, []).append(op)
    lines = ["Time & energy by operation type:"]
    rows = []
    for name in sorted(by_name):
        group = by_name[name]
        elapsed = [op.elapsed_s for op in group if op.elapsed_s is not None]
        energy = [op.energy_j for op in group if op.energy_j is not None]
        overhead = [op.overhead_s for op in group if op.overhead_s is not None]
        rows.append((
            name, str(len(group)),
            f"{sum(elapsed):.2f}",
            f"{sum(elapsed) / len(elapsed):.2f}" if elapsed else "-",
            f"{sum(overhead) * 1e3:.1f}" if overhead else "-",
            f"{sum(energy):.2f}" if energy else "-",
            f"{sum(energy) / len(energy):.2f}" if energy else "-",
        ))
    lines += render_table(
        ("operation", "ops", "time s", "mean s", "overhead ms",
         "energy J", "mean J"),
        rows,
    )
    return lines


def render_prediction_errors(ops: Sequence[OperationForensics]) -> List[str]:
    """Prediction-vs-actual table for every predicted, completed op."""
    rows = []
    time_errors: List[float] = []
    energy_errors: List[float] = []
    for op in ops:
        time_pair = op.prediction_error("time")
        if time_pair is None:
            continue
        predicted_t, actual_t, err_t = time_pair
        time_errors.append(abs(err_t))
        energy_pair = op.prediction_error("energy")
        if energy_pair is not None:
            predicted_e, actual_e, err_e = energy_pair
            energy_errors.append(abs(err_e))
            energy_cells = (f"{predicted_e:.2f}", f"{actual_e:.2f}",
                            f"{err_e:+.1%}")
        else:
            energy_cells = ("-", "-", "-")
        rows.append((
            f"#{op.opid} {op.operation}", op.alternative,
            fmt_seconds(predicted_t), fmt_seconds(actual_t), f"{err_t:+.1%}",
            *energy_cells,
        ))
    lines = ["Prediction vs actual:"]
    if not rows:
        lines.append("  (no completed operations carried predictions — "
                     "exploration and forced runs are unpredicted)")
        return lines
    lines += render_table(
        ("operation", "alternative", "T pred", "T actual", "T err",
         "E pred", "E actual", "E err"),
        rows,
    )
    mean_abs = sum(time_errors) / len(time_errors)
    lines.append(f"  mean |time error|: {mean_abs:.1%} over {len(time_errors)} ops")
    if energy_errors:
        mean_abs_e = sum(energy_errors) / len(energy_errors)
        lines.append(f"  mean |energy error|: {mean_abs_e:.1%} "
                     f"over {len(energy_errors)} ops")
    return lines


def render_subsystems(spans: Sequence[Dict[str, Any]],
                      metrics: Dict[str, Any]) -> List[str]:
    """Aggregate what the RPC, solver, and Coda layers reported."""
    lines = ["Subsystems:"]
    rpcs = [s for s in spans if s["name"] == "rpc.call"]
    if rpcs:
        failed = sum(1 for s in rpcs if "error" in s["attrs"])
        sent = sum(s["attrs"].get("bytes_sent", 0) for s in rpcs)
        received = sum(s["attrs"].get("bytes_received", 0) for s in rpcs)
        busy = sum(s["duration"] for s in rpcs)
        lines.append(
            f"  rpc: {len(rpcs)} calls ({failed} failed), "
            f"{sent / 1024:.1f} KB sent / {received / 1024:.1f} KB received, "
            f"{fmt_seconds(busy)} on the wire"
        )
    solves = [s for s in spans if s["name"] == "solver.solve"]
    if solves:
        visits = sum(s["attrs"].get("visits", 0) for s in solves)
        evaluations = sum(s["attrs"].get("evaluations", 0) for s in solves)
        pruned = sum(s["attrs"].get("pruned", 0) for s in solves)
        lines.append(
            f"  solver: {len(solves)} solves, {visits} visits, "
            f"{evaluations} evaluations ({pruned} pruned by the memo table)"
        )
    reintegrations = [s for s in spans if s["name"] == "coda.reintegrate"]
    if reintegrations:
        nbytes = sum(s["attrs"].get("bytes", 0) for s in reintegrations)
        busy = sum(s["duration"] for s in reintegrations)
        lines.append(
            f"  coda: {len(reintegrations)} reintegration passes, "
            f"{nbytes / 1024:.1f} KB of CML drained in {fmt_seconds(busy)}"
        )
    snapshots = [s for s in spans if s["name"] == "monitors.predict_all"]
    if snapshots:
        lines.append(f"  monitors: {len(snapshots)} snapshot assemblies")
    for name in ("sim.events", "sim.processes"):
        entry = metrics.get(name)
        if entry is not None:
            lines.append(f"  {name}: {entry.get('value', 0):.0f}")
    if len(lines) == 1:
        lines.append("  (no subsystem spans in trace)")
    return lines


def render_trace_report(records: Sequence[Dict[str, Any]]) -> str:
    """The full ``repro trace`` report over raw JSONL records."""
    spans, metrics = split_records(records)
    ops = collect_operations(spans)
    sections = [
        render_operations_table(ops),
        render_phase_breakdown(ops),
        render_time_energy_breakdown(ops),
        render_prediction_errors(ops),
        render_subsystems(spans, metrics),
    ]
    title = (f"Trace forensics: {len(spans)} spans, "
             f"{len(ops)} operations")
    lines = [title, "=" * len(title)]
    for section in sections:
        lines.append("")
        lines.extend(section)
    return "\n".join(lines)
