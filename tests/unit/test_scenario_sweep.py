"""Unit tests for parallel scenario sweeps (``repro scenario sweep``).

The multiprocess leg (jobs > 1 byte-identical to jobs == 1) lives in
the integration suite; these tests pin the seed derivation, document
shape, and canonical serialization in-process.
"""

import json

import pytest

from repro.scenarios import (
    canned_spec,
    derive_seed,
    run_sweep,
    sweep_to_json,
    variant_seeds,
)
from repro.scenarios.sweep import SWEEP_SCHEMA


def spec():
    return canned_spec("walk-in-office")


class TestVariantSeeds:
    def test_variant_zero_is_the_spec_seed(self):
        spec = canned_spec("walk-in-office")
        assert variant_seeds(spec, 3)[0] == spec.seed

    def test_seeds_are_crc32_derived_and_stable(self):
        spec = canned_spec("walk-in-office")
        seeds = variant_seeds(spec, 4)
        expected = [derive_seed(spec.seed, "sweep", str(i))
                    for i in range(1, 4)]
        assert seeds[1:] == expected
        # Distinct — a sweep of identical seeds would measure nothing.
        assert len(set(seeds)) == 4

    def test_prefix_stability(self):
        # Asking for more variants never changes the earlier seeds.
        spec = canned_spec("walk-in-office")
        assert variant_seeds(spec, 5)[:3] == variant_seeds(spec, 3)

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            variant_seeds(spec(), 0)
        with pytest.raises(ValueError):
            run_sweep(spec(), variants=2, jobs=0)


class TestRunSweep:
    @pytest.fixture(scope="class")
    def doc(self):
        return run_sweep(spec(), variants=2, jobs=1, profile="smoke")

    def test_document_header(self, doc):
        spec = canned_spec("walk-in-office")
        assert doc["schema"] == SWEEP_SCHEMA
        assert doc["scenario"] == spec.name
        assert doc["profile"] == "smoke"
        assert doc["base_seed"] == spec.seed

    def test_variants_ordered_by_index(self, doc):
        assert [v["index"] for v in doc["variants"]] == [0, 1]
        assert [v["seed"] for v in doc["variants"]] == \
            variant_seeds(spec(), 2)

    def test_variant_zero_matches_single_run(self, doc):
        from repro.scenarios import run_scenario
        solo = run_scenario(spec(), profile="smoke")
        assert doc["variants"][0]["report"] == solo.to_dict()

    def test_summary_aggregates(self, doc):
        summary = doc["summary"]
        assert summary["variants"] == 2
        reports = [v["report"] for v in doc["variants"]]
        assert summary["ops"] == sum(r["totals"]["ops"] for r in reports)
        latency = summary["latency_mean_s"]
        assert latency["min"] <= latency["mean"] <= latency["max"]
        energy = summary["energy_j"]
        assert energy["min"] <= energy["mean"] <= energy["max"]

    def test_serialization_is_canonical(self, doc):
        text = sweep_to_json(doc)
        assert text.endswith("\n")
        assert text == sweep_to_json(json.loads(text))

    def test_rerun_is_byte_identical(self, doc):
        again = run_sweep(spec(), variants=2, jobs=1, profile="smoke")
        assert sweep_to_json(again) == sweep_to_json(doc)
