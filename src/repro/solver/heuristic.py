"""The heuristic solver (paper §3.6, after Narayanan et al.).

"Spectra ... uses a heuristic solver to search the space of possible
servers, execution plans, and fidelities.  The solver selects the
alternative that maximizes an input utility function.  Because it uses
heuristic techniques, it is not guaranteed to select the optimal
alternative — however ... it usually selects a very good option."

The algorithm is multi-restart coordinate ascent: from a starting state,
repeatedly move to the best single-coordinate change that improves
utility, until no neighbor improves (a local maximum of the search
graph).  Restarts are spread deterministically across the space with a
seeded PRNG.  The per-solve seed is derived by CRC32-mixing a solve
counter into the base seed: successive operations get *decorrelated*
restart points (solve N and solve N+1 no longer start from identical
states), while a fresh solver replays the same seed sequence, so whole
runs stay reproducible.

Utility evaluations are cached per solve; the evaluation *count* is
reported because the Spectra client charges decision CPU time per
evaluation (the cost visible in the paper's Figure 10, where choosing an
alternative grows from 0.4 ms with no servers to 43.4 ms with five).
The full ``(prediction, utility)`` list is a diagnostic and is only
materialized when the solver is built with ``collect_evaluated=True``.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List, Optional, Tuple

from ..telemetry import Telemetry, ensure_telemetry
from .space import PredictFn, SearchSpace, SolverResult, UtilityFn


class HeuristicSolver:
    """Multi-restart best-improvement coordinate ascent."""

    name = "heuristic"

    def __init__(self, restarts: int = 5, seed: int = 42,
                 max_steps: int = 64,
                 collect_evaluated: bool = False,
                 telemetry: Optional[Telemetry] = None):
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1: {restarts}")
        self.restarts = restarts
        self.seed = seed
        self.max_steps = max_steps
        #: populate SolverResult.evaluated (explain/forensics); costs a
        #: list append per distinct alternative evaluated.
        self.collect_evaluated = collect_evaluated
        self.telemetry = ensure_telemetry(telemetry)
        #: solves performed so far; mixed into each solve's restart seed.
        self._solve_index = 0

    def _solve_seed(self) -> int:
        """CRC32-derived per-solve seed: deterministic run to run, but
        different across successive solves, so restart starting points
        are not perfectly correlated operation after operation."""
        index = self._solve_index
        self._solve_index = index + 1
        return zlib.crc32(index.to_bytes(8, "little"),
                          self.seed & 0xFFFFFFFF)

    def solve(self, space: SearchSpace, predict: PredictFn,
              utility: UtilityFn) -> SolverResult:
        size = space.size()
        if size == 0:
            return SolverResult(best=None, utility=float("-inf"), evaluations=0)

        span = self.telemetry.tracer.start_span(
            "solver.solve", space_size=size, restarts=self.restarts,
        )
        cache: Dict[Tuple[int, ...], Tuple] = {}
        collect = self.collect_evaluated
        evaluated: List[Tuple] = []
        visits = [0]

        def score(state: Tuple[int, ...]):
            visits[0] += 1
            hit = cache.get(state)
            if hit is None:
                prediction = predict(space.decode(state))
                value = utility(prediction)
                # Rank key: utility first, then lower predicted time.
                # The time tie-break lets the ascent walk off plateaus
                # where every alternative scores 0 (e.g. everything is
                # past a latency-ramp cutoff) toward the feasible region.
                key = (value, -prediction.total_time_s)
                hit = (prediction, value, key)
                cache[state] = hit
                if collect:
                    evaluated.append((prediction, value))
            return hit

        rng = random.Random(self._solve_seed())
        starts = self._starting_states(space, rng)

        best_prediction = None
        best_utility = float("-inf")
        best_key = None
        #: best utility seen after each restart — the convergence story
        trajectory: List[float] = []
        for start in starts:
            prediction, value, key = self._ascend(space, start, score)
            if best_key is None or key > best_key:
                best_prediction, best_utility, best_key = prediction, value, key
            trajectory.append(best_utility)

        result = SolverResult(
            best=best_prediction,
            utility=best_utility,
            evaluations=len(cache),
            visits=visits[0],
            evaluated=evaluated,
        )
        # end() is a no-op on the null tracer's spans, so the span
        # closes unconditionally — no path leaves it open.
        span.end(
            visits=result.visits,
            evaluations=result.evaluations,
            pruned=result.visits - result.evaluations,
            best_utility=best_utility,
            trajectory=trajectory,
        )
        if self.telemetry.enabled:
            metrics = self.telemetry.metrics
            metrics.counter("solver.solves").inc()
            metrics.counter("solver.visits").inc(result.visits)
            metrics.counter("solver.evaluations").inc(result.evaluations)
            metrics.counter("solver.pruned").inc(
                result.visits - result.evaluations
            )
        return result

    # -- internals --------------------------------------------------------------------

    def _starting_states(self, space: SearchSpace,
                         rng: random.Random) -> List[Tuple[int, ...]]:
        """Deterministic spread of restart points.

        Always includes the first alternative (a stable anchor — for the
        paper's applications this is the local plan at the first
        fidelity, which is always feasible), plus random states.
        """
        alternatives = space.all_alternatives()
        starts = [space.encode(alternatives[0])]
        sizes = space.coordinate_sizes()
        for _ in range(self.restarts - 1):
            starts.append(tuple(rng.randrange(s) for s in sizes))
        return starts

    def _ascend(self, space: SearchSpace, start: Tuple[int, ...], score):
        state = start
        prediction, value, key = score(state)
        for _ in range(self.max_steps):
            improved = False
            best_neighbor = None
            best_neighbor_key = key
            for neighbor in space.neighbors(state):
                n_prediction, n_value, n_key = score(neighbor)
                if n_key > best_neighbor_key:
                    best_neighbor = (neighbor, n_prediction, n_value, n_key)
                    best_neighbor_key = n_key
                    improved = True
            if not improved:
                break
            state, prediction, value, key = best_neighbor
        return prediction, value, key
